//! Loopback integration tests for the HTTP/1.1 front-end: routing,
//! framing limits, keep-alive reuse, the Prometheus metrics plane, and
//! the admin evict round-trip.

use schema_summary_datasets::{tpch, xmark};
use schema_summary_service::{HttpConfig, HttpServer, SummaryRequest, SummaryService};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn build_service() -> Arc<SummaryService> {
    let service = SummaryService::default();
    let (xg, xs, _) = xmark::schema(1.0);
    let (tg, ts, _) = tpch::schema(1.0);
    service.register_named("xmark", Arc::new(xg), Arc::new(xs));
    service.register_named("tpch", Arc::new(tg), Arc::new(ts));
    Arc::new(service)
}

fn bind(config: HttpConfig) -> HttpServer {
    HttpServer::bind("127.0.0.1:0", build_service(), config).unwrap()
}

fn default_config() -> HttpConfig {
    HttpConfig {
        workers: 2,
        queue_capacity: 64,
        max_connections: 16,
        request_timeout: Duration::from_secs(60),
        log_requests: false,
        peers: Vec::new(),
    }
}

/// A parsed HTTP response off the wire.
#[derive(Debug)]
struct Response {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("body is UTF-8")
    }
}

/// A raw HTTP client over one TCP connection, so keep-alive reuse is
/// under test control (no helper library, nothing buffers ahead).
struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            stream,
            pending: Vec::new(),
        }
    }

    fn send_raw(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).unwrap();
        self.stream.flush().unwrap();
    }

    /// Send one request with optional body; `extra` lets tests inject
    /// headers like `Connection: close`.
    fn request(&mut self, method: &str, target: &str, extra: &str, body: Option<&str>) -> Response {
        let raw = match body {
            Some(b) => format!(
                "{method} {target} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{b}",
                b.len()
            ),
            None => format!("{method} {target} HTTP/1.1\r\nHost: test\r\n{extra}\r\n"),
        };
        self.send_raw(raw.as_bytes());
        self.read_response()
    }

    fn get(&mut self, target: &str) -> Response {
        self.request("GET", target, "", None)
    }

    fn post(&mut self, target: &str, body: &str) -> Response {
        self.request("POST", target, "", Some(body))
    }

    /// Read exactly one response: head to the blank line, then
    /// `Content-Length` body bytes (the server always sends a length).
    fn read_response(&mut self) -> Response {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = find(&self.pending, b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.pending[..head_end]).unwrap();
                let mut lines = head.split("\r\n");
                let status_line = lines.next().unwrap();
                assert!(
                    status_line.starts_with("HTTP/1.1 "),
                    "bad status line: {status_line}"
                );
                let status: u16 = status_line
                    .split_whitespace()
                    .nth(1)
                    .unwrap()
                    .parse()
                    .unwrap();
                let headers: HashMap<String, String> = lines
                    .filter_map(|l| l.split_once(':'))
                    .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
                    .collect();
                let len: usize = headers
                    .get("content-length")
                    .expect("every response carries Content-Length")
                    .parse()
                    .unwrap();
                let body_start = head_end + 4;
                while self.pending.len() < body_start + len {
                    let n = self.stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "EOF mid-body");
                    self.pending.extend_from_slice(&chunk[..n]);
                }
                let body = self.pending[body_start..body_start + len].to_vec();
                self.pending.drain(..body_start + len);
                return Response {
                    status,
                    headers,
                    body,
                };
            }
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response head");
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }

    /// The server closed its end: reads return EOF (or reset).
    fn assert_eof(&mut self) {
        let mut chunk = [0u8; 64];
        match self.stream.read(&mut chunk) {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, got {n} bytes"),
            Err(_) => {} // reset also counts as closed
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Pull one metric value out of a Prometheus text exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn routes_summary_levels_expand_export_health_on_one_connection() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());

    // Flat summary: must match what the service answers directly.
    let reply = client.post("/v1/summary", "{\"schema\":\"xmark\",\"k\":3}");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("content-type"), Some("application/json"));
    let request: SummaryRequest = serde_json::from_str("{\"schema\":\"xmark\",\"k\":3}").unwrap();
    let direct = server.service().handle(&request).unwrap();
    let expected = serde_json::to_string(direct.result.as_ref()).unwrap();
    assert_eq!(
        reply.text(),
        expected,
        "HTTP body must equal the service's own answer"
    );

    // Multi-level and drill-down ride the same connection.
    let reply = client.post("/v1/levels", "{\"schema\":\"xmark\",\"levels\":[6,3]}");
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"levels\""));
    let reply = client.post(
        "/v1/expand",
        "{\"schema\":\"xmark\",\"levels\":[6,3],\"expand\":{\"level\":1,\"group\":0}}",
    );
    assert_eq!(reply.status, 200);

    // Export: JSON by default, markdown on demand.
    let reply = client.get("/v1/export/xmark?k=3");
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"fingerprint\""));
    assert!(reply.text().contains("\"elements\""));
    let reply = client.get("/v1/export/xmark?k=3&format=md");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("text/markdown; charset=utf-8")
    );
    assert!(reply.text().starts_with("# Schema summary"));

    // Health, unknown paths, wrong methods, bad shapes.
    let reply = client.get("/healthz");
    assert_eq!(
        (reply.status, reply.text()),
        (200, "ok role=node peers=0\n")
    );
    assert_eq!(client.get("/nope").status, 404);
    // Wrong method on a known path: 405 with an Allow header naming the
    // method that would have worked (RFC 9110 §10.2.1).
    let reply = client.get("/v1/summary");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("POST"));
    let reply = client.post("/metrics", "{}");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("GET"));
    let reply = client.post("/v1/export/xmark", "{}");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("GET"));
    assert!(client.get("/nope").header("allow").is_none());
    assert_eq!(
        client
            .post("/v1/summary", "{\"schema\":\"nope\",\"k\":3}")
            .status,
        404
    );
    assert_eq!(
        client
            .post(
                "/v1/summary",
                "{\"schema\":\"xmark\",\"k\":3,\"levels\":[4,2]}"
            )
            .status,
        400,
        "a flat request must not carry levels"
    );
    assert_eq!(
        client
            .post("/v1/levels", "{\"schema\":\"xmark\",\"k\":3}")
            .status,
        400
    );
    assert_eq!(client.post("/v1/summary", "not json").status, 400);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1, "every request rode one connection");
    assert!(stats.served >= 12);
}

#[test]
fn keep_alive_reuses_the_connection_and_close_ends_it() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());

    for _ in 0..3 {
        let reply = client.get("/healthz");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("connection"), Some("keep-alive"));
    }
    assert_eq!(server.stats().accepted, 1);
    assert_eq!(server.stats().served, 3);

    // `Connection: close` is honored and the socket actually closes.
    let reply = client.request("GET", "/healthz", "Connection: close\r\n", None);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    client.assert_eof();

    // HTTP/1.0 defaults to close.
    let mut old = Client::connect(server.local_addr());
    old.send_raw(b"GET /healthz HTTP/1.0\r\n\r\n");
    let reply = old.read_response();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    old.assert_eof();

    server.shutdown();
}

#[test]
fn malformed_requests_get_400_and_a_terminal_close() {
    let server = bind(default_config());

    // Lowercase method: not a token this server admits.
    let mut client = Client::connect(server.local_addr());
    client.send_raw(b"get /healthz HTTP/1.1\r\n\r\n");
    let reply = client.read_response();
    assert_eq!(reply.status, 400);
    assert_eq!(reply.header("connection"), Some("close"));
    assert!(reply.text().contains("\"malformed\""));
    client.assert_eof();

    // Garbled request line.
    let mut client = Client::connect(server.local_addr());
    client.send_raw(b"GET\r\n\r\n");
    assert_eq!(client.read_response().status, 400);
    client.assert_eof();

    // Unsupported version.
    let mut client = Client::connect(server.local_addr());
    client.send_raw(b"GET / HTTP/2.0\r\n\r\n");
    assert_eq!(client.read_response().status, 505);
    client.assert_eof();

    server.shutdown();
}

#[test]
fn oversized_head_gets_431_and_oversized_body_413() {
    let server = bind(default_config());

    let mut client = Client::connect(server.local_addr());
    let huge = "x".repeat(9 * 1024);
    client.send_raw(format!("GET /healthz HTTP/1.1\r\nX-Padding: {huge}\r\n\r\n").as_bytes());
    let reply = client.read_response();
    assert_eq!(reply.status, 431);
    assert_eq!(reply.header("connection"), Some("close"));
    client.assert_eof();

    let mut client = Client::connect(server.local_addr());
    client.send_raw(b"POST /v1/summary HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n");
    let reply = client.read_response();
    assert_eq!(reply.status, 413);
    client.assert_eof();

    server.shutdown();
}

#[test]
fn chunked_bodies_are_decoded() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());

    let body = "{\"schema\":\"tpch\",\"k\":2}";
    let raw = format!(
        "POST /v1/summary HTTP/1.1\r\nHost: test\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n{body}\r\n0\r\n\r\n",
        body.len()
    );
    client.send_raw(raw.as_bytes());
    let reply = client.read_response();
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"k\":2"));

    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_a_503_and_closes() {
    let mut config = default_config();
    config.max_connections = 1;
    let server = bind(config);

    // One idle connection occupies the cap; the next gets a structured
    // 503 and EOF without ever sending a request.
    let _holder = TcpStream::connect(server.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut shed = Client {
        stream: TcpStream::connect(server.local_addr()).unwrap(),
        pending: Vec::new(),
    };
    shed.stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reply = shed.read_response();
    assert_eq!(reply.status, 503);
    assert!(reply.text().contains("\"overloaded\""));
    shed.assert_eof();

    assert!(server.shutdown().shed >= 1);
}

#[test]
fn metrics_expose_cache_and_server_counters_after_a_cold_warm_pair() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());

    let body = "{\"schema\":\"xmark\",\"k\":4}";
    assert_eq!(client.post("/v1/summary", body).status, 200); // cold
    assert_eq!(client.post("/v1/summary", body).status, 200); // warm

    let reply = client.get("/metrics");
    assert_eq!(reply.status, 200);
    let text = reply.text();
    assert!(text.contains("# TYPE schema_summary_cache_hits_total counter"));
    assert!(metric(text, "schema_summary_cache_hits_total") >= 1.0);
    assert!(metric(text, "schema_summary_cache_misses_total") >= 1.0);
    assert!(metric(text, "schema_summary_cache_entries") >= 1.0);
    assert_eq!(metric(text, "schema_summary_schemas"), 2.0);
    assert!(metric(text, "schema_summary_compute_micros_total") > 0.0);
    assert!(metric(text, "schema_summary_matrices_computed_total") >= 1.0);
    // The /metrics request itself is in flight: served counts the two
    // summaries, active is this connection.
    assert!(metric(text, "schema_summary_http_accepted_total") >= 1.0);
    assert!(metric(text, "schema_summary_http_served_total") >= 2.0);
    assert_eq!(metric(text, "schema_summary_http_active_connections"), 1.0);

    // Per-shard catalog occupancy: one labelled gauge sample per shard,
    // summing to the registered-schema gauge.
    assert!(text.contains("# TYPE schema_summary_catalog_shard_entries gauge"));
    let shard_sum = |name: &str| -> f64 {
        text.lines()
            .filter(|l| l.starts_with(&format!("{name}{{shard=\"")))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum()
    };
    let catalog_shards = text
        .lines()
        .filter(|l| l.starts_with("schema_summary_catalog_shard_entries{shard=\""))
        .count();
    assert!(catalog_shards >= 1, "at least one catalog shard sample");
    assert_eq!(
        shard_sum("schema_summary_catalog_shard_entries"),
        metric(text, "schema_summary_schemas")
    );
    assert_eq!(
        shard_sum("schema_summary_result_shard_entries"),
        metric(text, "schema_summary_cache_entries")
    );

    // Cluster families exist (and are zero) on a single-node deployment.
    assert_eq!(metric(text, "schema_summary_catalog_rehydrated_total"), 0.0);
    assert_eq!(metric(text, "schema_summary_fanout_sent_total"), 0.0);
    assert_eq!(metric(text, "schema_summary_fanout_failed_total"), 0.0);

    server.shutdown();
}

#[test]
fn admin_evict_round_trip_forces_the_next_request_cold() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());
    let body = "{\"schema\":\"xmark\",\"k\":5}";

    // Cold, then warm: one miss, one hit, one memoized matrix build.
    assert_eq!(client.post("/v1/summary", body).status, 200);
    assert_eq!(client.post("/v1/summary", body).status, 200);
    let before = server.service().cache_stats();
    assert_eq!((before.hits, before.misses), (1, 1));

    // The admin plane sees the resident entry.
    let reply = client.get("/admin/cache");
    assert_eq!(reply.status, 200);
    assert!(
        reply.text().contains("flat/balance/k=5"),
        "{}",
        reply.text()
    );

    // Evict by schema name; the reply names the fingerprint and count.
    let reply = client.post("/admin/evict", "{\"schema\":\"xmark\"}");
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"evicted\":1"), "{}", reply.text());
    let fingerprint = server.service().fingerprint_of("xmark").unwrap().to_hex();
    assert!(reply.text().contains(&fingerprint));

    // The same request is now a miss again — the cold path recomputes
    // the selection (compute time grows) but not the memoized matrices.
    assert_eq!(client.post("/v1/summary", body).status, 200);
    let after = server.service().cache_stats();
    assert_eq!(after.hits, before.hits, "no hit may be served post-evict");
    assert_eq!(after.misses, before.misses + 1, "evicted key must miss");
    assert!(
        after.compute_micros > before.compute_micros,
        "the selection must actually be recomputed"
    );
    assert_eq!(
        after.matrices_computed, before.matrices_computed,
        "eviction drops results, not memoized matrices"
    );
    assert_eq!(after.admin_evictions, 1);

    // Evicting garbage is a clean client error.
    assert_eq!(
        client
            .post("/admin/evict", "{\"fingerprint\":\"xyz\"}")
            .status,
        400
    );
    assert_eq!(
        client.post("/admin/evict", "{\"schema\":\"nope\"}").status,
        404
    );
    assert_eq!(client.post("/admin/evict", "{}").status, 400);

    server.shutdown();
}

/// Pull one labelled metric sample out of a Prometheus text exposition.
fn labeled_metric(text: &str, name: &str, label: &str, value: &str) -> f64 {
    let prefix = format!("{name}{{{label}=\"{value}\"}} ");
    text.lines()
        .find(|l| l.starts_with(&prefix))
        .unwrap_or_else(|| panic!("sample {prefix}missing from:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn admin_refresh_routes_deltas_and_drop_accounting_reconciles() {
    let server = bind(default_config());
    let mut client = Client::connect(server.local_addr());
    let body = "{\"schema\":\"xmark\",\"k\":5}";
    assert_eq!(client.post("/v1/summary", body).status, 200);

    // Register the same schema with doubled cardinalities under a second
    // name: a genuine delta that leaves every RC bit-identical, so the
    // refresh rides the warm pure-rescale path (zero rows re-explored).
    let (xg, xs, _) = xmark::schema(1.0);
    let scaled = Arc::new(xs.scaled(2.0));
    server
        .service()
        .register_named("xmark-v2", Arc::new(xg), scaled);

    // Diff the two registered versions through the admin plane.
    let reply = client.post("/admin/refresh", "{\"old\":\"xmark\",\"new\":\"xmark-v2\"}");
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"empty\":false"), "{}", reply.text());
    assert!(
        reply.text().contains("\"class\":\"rescale\""),
        "{}",
        reply.text()
    );
    assert!(reply.text().contains("\"warm\":true"), "{}", reply.text());
    assert!(
        reply.text().contains("\"rows_recomputed\":0"),
        "{}",
        reply.text()
    );

    // Malformed and unknown operands are clean client errors; the wrong
    // method is 405, not 404.
    assert_eq!(client.post("/admin/refresh", "{}").status, 400);
    assert_eq!(
        client
            .post("/admin/refresh", "{\"old\":\"nope\",\"new\":\"xmark-v2\"}")
            .status,
        404
    );
    assert_eq!(client.get("/admin/refresh").status, 405);

    // The delta counters are exposed, and every dropped result is
    // accounted under exactly one cause: the labelled family sums to the
    // three cause counters.
    let text_reply = client.get("/metrics");
    let text = text_reply.text();
    assert_eq!(
        metric(text, "schema_summary_delta_fallback_cold_total"),
        0.0
    );
    assert!(metric(text, "schema_summary_delta_refreshes_total") >= 1.0);
    // The class-labelled family reconciles: the three warm classes sum
    // to the refresh total, and this rescale landed under `rescale`.
    let by_class = |class: &str| {
        labeled_metric(
            text,
            "schema_summary_delta_refreshes_by_class_total",
            "class",
            class,
        )
    };
    assert_eq!(by_class("rescale"), 1.0);
    assert_eq!(by_class("cold"), 0.0);
    assert_eq!(
        by_class("rescale") + by_class("splice") + by_class("structural"),
        metric(text, "schema_summary_delta_refreshes_total")
    );
    let by_cause =
        |cause: &str| labeled_metric(text, "schema_summary_results_dropped_total", "cause", cause);
    assert_eq!(
        by_cause("capacity"),
        metric(text, "schema_summary_cache_evictions_total")
    );
    assert_eq!(
        by_cause("invalidation"),
        metric(text, "schema_summary_cache_invalidations_total")
    );
    assert_eq!(
        by_cause("admin"),
        metric(text, "schema_summary_cache_admin_evictions_total")
    );
    assert!(
        by_cause("invalidation") >= 1.0,
        "the refresh dropped a result"
    );

    server.shutdown();
}

#[test]
fn admin_refresh_splices_structural_growth_and_labels_the_class() {
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraph, SchemaGraphBuilder, SchemaStats, SchemaType};
    use schema_summary_service::ServiceConfig;

    // A tiny site schema, optionally grown in place by appending a
    // `wishlist` set under `person` — an additive structural delta.
    fn site(grown: bool) -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        if grown {
            b.add_child(person, "wishlist", SchemaType::set_of_rcd())
                .unwrap();
        }
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![1u64; g.len()];
        cards[find("person").index()] = 200;
        cards[find("name").index()] = 200;
        let mut links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 200,
            },
        ];
        if grown {
            cards[find("wishlist").index()] = 300;
            links.push(LinkCount {
                from: find("person"),
                to: find("wishlist"),
                count: 300,
            });
        }
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (Arc::new(g), Arc::new(s))
    }

    // The tiny graph is well inside any BFS horizon, so open the
    // fraction guard for the warm path to accept the grown footprint.
    let service = Arc::new(SummaryService::new(ServiceConfig {
        delta_max_fraction: 1.0,
        ..Default::default()
    }));
    let (g, s) = site(false);
    service.register_named("site", g, s);
    let (g2, s2) = site(true);
    let new_fp = service.register(g2, s2);
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service), default_config()).unwrap();
    let mut client = Client::connect(server.local_addr());

    // Warm the old fingerprint so there are matrices to splice and a
    // cached result to re-derive.
    assert_eq!(
        client
            .post("/v1/summary", "{\"schema\":\"site\",\"k\":2}")
            .status,
        200
    );

    let body = format!("{{\"old\":\"site\",\"new\":\"{}\"}}", new_fp.to_hex());
    let reply = client.post("/admin/refresh", &body);
    assert_eq!(reply.status, 200);
    assert!(
        reply.text().contains("\"class\":\"additive_structural\""),
        "{}",
        reply.text()
    );
    assert!(reply.text().contains("\"warm\":true"), "{}", reply.text());

    let stats = service.cache_stats();
    assert_eq!(stats.delta_refreshes_structural, 1);
    assert_eq!(stats.delta_fallback_cold, 0);
    assert_eq!(
        stats.importance_seeded, 1,
        "the grown fixpoint restarts from the rebased seed"
    );

    let text_reply = client.get("/metrics");
    let text = text_reply.text();
    let by_class = |class: &str| {
        labeled_metric(
            text,
            "schema_summary_delta_refreshes_by_class_total",
            "class",
            class,
        )
    };
    assert_eq!(by_class("structural"), 1.0);
    assert_eq!(by_class("cold"), 0.0);
    assert_eq!(
        by_class("rescale") + by_class("splice") + by_class("structural"),
        metric(text, "schema_summary_delta_refreshes_total")
    );

    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_buffered_requests_and_refuses_new_ones() {
    let server = bind(default_config());
    let addr = server.local_addr();
    let mut client = Client::connect(addr);
    client.send_raw(
        b"POST /v1/summary HTTP/1.1\r\nHost: t\r\nContent-Length: 23\r\n\r\n{\"schema\":\"tpch\",\"k\":3}",
    );
    // Give the connection thread time to buffer the request, then shut
    // down: the answer must still go out.
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || server.shutdown());
    let reply = client.read_response();
    assert_eq!(reply.status, 200);
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.active_connections, 0);
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = [0u8; 16];
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        }
    );
}
