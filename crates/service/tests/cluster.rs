//! Cluster-tier integration tests: rendezvous routing through a real
//! `ClusterRouter` over two live node processes-worth of state, failover
//! when the owner dies, catalog rehydration after a node restart, and
//! cross-node invalidation fan-out with loop prevention.

use proptest::prelude::*;
use schema_summary_algo::Algorithm;
use schema_summary_datasets::{tpch, xmark};
use schema_summary_service::{
    ClusterRouter, HttpConfig, HttpServer, ProbeConfig, RendezvousRing, RouterConfig,
    ServiceConfig, SummaryService,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ------------------------------------------------------------ test plumbing

/// A fresh, empty directory under the system temp dir, unique per call.
fn fresh_store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "schema-summary-cluster-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_service() -> Arc<SummaryService> {
    let service = SummaryService::default();
    let (xg, xs, _) = xmark::schema(1.0);
    let (tg, ts, _) = tpch::schema(1.0);
    service.register_named("xmark", Arc::new(xg), Arc::new(xs));
    service.register_named("tpch", Arc::new(tg), Arc::new(ts));
    Arc::new(service)
}

fn node_config() -> HttpConfig {
    HttpConfig {
        workers: 2,
        queue_capacity: 64,
        max_connections: 16,
        request_timeout: Duration::from_secs(60),
        log_requests: false,
        peers: Vec::new(),
    }
}

/// Bind a node on an ephemeral port, returning the server and its
/// `host:port` address string (the ring's node identity).
fn bind_node(service: Arc<SummaryService>, config: HttpConfig) -> (HttpServer, String) {
    let server = HttpServer::bind("127.0.0.1:0", service, config).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn router_over(nodes: Vec<String>) -> ClusterRouter {
    ClusterRouter::bind(
        "127.0.0.1:0",
        RouterConfig {
            nodes,
            retries: 2,
            retry_backoff: Duration::from_millis(5),
            request_timeout: Duration::from_secs(10),
            probe: ProbeConfig {
                interval: Duration::from_millis(50),
                eject_after: 3,
                timeout: Duration::from_millis(250),
            },
            ..Default::default()
        },
    )
    .unwrap()
}

/// A parsed HTTP response off the wire (same minimal client as the
/// http_api tests: raw TCP so keep-alive and headers stay visible).
#[derive(Debug)]
struct Response {
    status: u16,
    body: Vec<u8>,
}

impl Response {
    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("body is UTF-8")
    }
}

struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            stream,
            pending: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, target: &str, extra: &str, body: Option<&str>) -> Response {
        let raw = match body {
            Some(b) => format!(
                "{method} {target} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{b}",
                b.len()
            ),
            None => format!("{method} {target} HTTP/1.1\r\nHost: test\r\n{extra}\r\n"),
        };
        self.stream.write_all(raw.as_bytes()).unwrap();
        self.stream.flush().unwrap();
        self.read_response()
    }

    fn get(&mut self, target: &str) -> Response {
        self.request("GET", target, "", None)
    }

    fn post(&mut self, target: &str, body: &str) -> Response {
        self.request("POST", target, "", Some(body))
    }

    fn read_response(&mut self) -> Response {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = find(&self.pending, b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.pending[..head_end]).unwrap();
                let mut lines = head.split("\r\n");
                let status: u16 = lines
                    .next()
                    .unwrap()
                    .split_whitespace()
                    .nth(1)
                    .unwrap()
                    .parse()
                    .unwrap();
                let headers: HashMap<String, String> = lines
                    .filter_map(|l| l.split_once(':'))
                    .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
                    .collect();
                let len: usize = headers
                    .get("content-length")
                    .expect("every response carries Content-Length")
                    .parse()
                    .unwrap();
                let body_start = head_end + 4;
                while self.pending.len() < body_start + len {
                    let n = self.stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "EOF mid-body");
                    self.pending.extend_from_slice(&chunk[..n]);
                }
                let body = self.pending[body_start..body_start + len].to_vec();
                self.pending.drain(..body_start + len);
                return Response { status, body };
            }
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response head");
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

// -------------------------------------------------- rendezvous properties

/// Rank a ring by node *name* so rankings over different configuration
/// orders (hence different indices) compare directly.
fn rank_names(ring: &RendezvousRing, key: &str) -> Vec<String> {
    ring.rank(key)
        .into_iter()
        .map(|i| ring.nodes()[i].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// HRW's minimal-disruption contract, both halves: removing a node
    /// that does not own a key leaves the key's owner untouched, and
    /// removing the owner re-homes the key to exactly the old
    /// second-ranked node. Nothing else in the ranking moves either way.
    #[test]
    fn removing_a_node_rehomes_only_the_keys_it_owned(
        node_count in 3usize..=6, subnet in 0usize..64, key_seed in 0u64..1_000_000,
    ) {
        let nodes: Vec<String> = (0..node_count)
            .map(|i| format!("10.0.{subnet}.{i}:7000"))
            .collect();
        let full = RendezvousRing::new(nodes.clone());
        let keys: Vec<String> = (0..10).map(|j| format!("schema-{key_seed}-{j}")).collect();

        for removed in 0..node_count {
            let survivors: Vec<String> = nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != removed)
                .map(|(_, n)| n.clone())
                .collect();
            let shrunk = RendezvousRing::new(survivors);
            for key in &keys {
                let before = rank_names(&full, key);
                let after = rank_names(&shrunk, key);
                // The survivor ranking is the old ranking with the
                // removed node deleted — per-pair score independence.
                let expected: Vec<String> = before
                    .iter()
                    .filter(|n| **n != nodes[removed])
                    .cloned()
                    .collect();
                prop_assert_eq!(&after, &expected, "key {}", key);
                if before[0] == nodes[removed] {
                    // Owner removed: the old runner-up takes over.
                    prop_assert_eq!(&after[0], &before[1], "key {}", key);
                } else {
                    // Non-owner removed: ownership does not move.
                    prop_assert_eq!(&after[0], &before[0], "key {}", key);
                }
            }
        }
    }

    /// The ranking is a pure function of the node-name set: any
    /// configuration order — as two independently started routers would
    /// have — yields the same by-name ranking for every key.
    #[test]
    fn ranking_is_deterministic_across_configurations(
        node_count in 2usize..=6, rotation in 1usize..6, key_seed in 0u64..1_000_000,
    ) {
        let nodes: Vec<String> = (0..node_count)
            .map(|i| format!("node-{i}.cluster:7000"))
            .collect();
        let mut rotated = nodes.clone();
        rotated.rotate_left(rotation % node_count);
        let a = RendezvousRing::new(nodes);
        let b = RendezvousRing::new(rotated);
        for j in 0..10 {
            let key = format!("schema-{key_seed}-{j}");
            prop_assert_eq!(rank_names(&a, &key), rank_names(&b, &key), "key {}", key);
        }
    }
}

// --------------------------------------------------- router over live nodes

/// Every request carrying a schema identifier lands on that identifier's
/// rendezvous owner, visible in the router's per-node counters.
#[test]
fn requests_land_on_the_rendezvous_owner() {
    let (node_a, addr_a) = bind_node(build_service(), node_config());
    let (node_b, addr_b) = bind_node(build_service(), node_config());
    let nodes = vec![addr_a, addr_b];
    let ring = RendezvousRing::new(nodes.clone());
    let router = router_over(nodes);
    let mut client = Client::connect(router.local_addr());

    let health = client.get("/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok role=router nodes=2 healthy=2\n");

    let mut expected = vec![0u64; 2];
    for (key, repeats) in [("xmark", 3u64), ("tpch", 2u64)] {
        let owner = ring.owner(key).unwrap();
        expected[owner] += repeats + 1;
        for _ in 0..repeats {
            let body = format!("{{\"schema\":\"{key}\",\"k\":3}}");
            assert_eq!(client.post("/v1/summary", &body).status, 200, "key {key}");
        }
        // Export keys on the path segment, not the body.
        assert_eq!(client.get(&format!("/v1/export/{key}?k=3")).status, 200);
    }

    let stats = router.stats();
    assert_eq!(stats.routed, expected, "per-node routed counters");
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.proxy_errors, 0);

    // The router's own metrics plane exposes the same counters.
    let metrics = client.get("/metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for (node, count) in router.nodes().iter().zip(&expected) {
        let line = format!("schema_summary_router_routed_total{{node=\"{node}\"}} {count}");
        assert!(text.contains(&line), "missing {line} in:\n{text}");
    }

    // Each node really served its routed share (health probes add
    // `/healthz` hits on top, so this is a floor, not an equality).
    assert!(node_a.stats().served >= expected[0]);
    assert!(node_b.stats().served >= expected[1]);
    router.shutdown();
    node_a.shutdown();
    node_b.shutdown();
}

/// Killing the owner node yields zero client-visible 5xx: the router
/// retries onto the next-ranked survivor, which answers.
#[test]
fn killing_the_owner_fails_over_without_client_visible_errors() {
    let (node_a, addr_a) = bind_node(build_service(), node_config());
    let (node_b, addr_b) = bind_node(build_service(), node_config());
    let nodes = vec![addr_a, addr_b];
    let ring = RendezvousRing::new(nodes.clone());
    let router = router_over(nodes);
    let mut client = Client::connect(router.local_addr());

    let owner = ring.owner("xmark").unwrap();
    let survivor = 1 - owner;
    let body = "{\"schema\":\"xmark\",\"k\":3}";
    assert_eq!(client.post("/v1/summary", body).status, 200);
    assert_eq!(router.stats().routed[owner], 1);

    // Kill the owner. Both nodes carry the catalog, so the survivor can
    // answer anything the owner could.
    let mut servers = [Some(node_a), Some(node_b)];
    servers[owner].take().unwrap().shutdown();

    for _ in 0..3 {
        let resp = client.post("/v1/summary", body);
        assert_eq!(resp.status, 200, "failover must hide the dead owner");
    }
    let stats = router.stats();
    assert!(stats.retries >= 1, "failover goes through the retry path");
    assert!(stats.proxy_errors >= 1, "the dead owner shows as an error");
    assert_eq!(stats.routed[survivor], 3);

    router.shutdown();
    servers[survivor].take().unwrap().shutdown();
}

// ----------------------------------------------------- catalog persistence

/// A restarted node rehydrates its registered schema graphs from the
/// catalog journal and serves them with no re-registration.
#[test]
fn restarted_node_serves_schemas_from_the_rehydrated_catalog() {
    let dir = fresh_store_dir("rehydrate");
    let (graph, stats, _) = xmark::schema(1.0);
    let (graph, stats) = (Arc::new(graph), Arc::new(stats));

    let first = SummaryService::try_new(ServiceConfig {
        store_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let fp = first.register_named("xmark", Arc::clone(&graph), Arc::clone(&stats));
    assert_eq!(first.cache_stats().catalog_rehydrated, 0);
    drop(first);

    // "Restart": a fresh service over the same directory, no register.
    let second = SummaryService::try_new(ServiceConfig {
        store_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    assert_eq!(second.cache_stats().catalog_rehydrated, 1);
    assert_eq!(second.fingerprint_of("xmark"), Some(fp));
    let reply = second.summarize(fp, Algorithm::Balance, 5).unwrap();
    assert!(!reply.result.selection.is_empty());

    // And over HTTP: the restarted node answers by name.
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(second), node_config()).unwrap();
    let mut client = Client::connect(server.local_addr());
    assert_eq!(client.get("/v1/export/xmark?k=3").status, 200);
    assert_eq!(
        client
            .post("/v1/summary", "{\"schema\":\"xmark\",\"k\":3}")
            .status,
        200
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registering the same named schema again after a rehydrating restart
/// is a no-op for the journal: replay stays bounded instead of growing
/// by one record per restart.
#[test]
fn reregistration_after_rehydration_does_not_regrow_the_journal() {
    let dir = fresh_store_dir("dedupe");
    let (graph, stats, _) = tpch::schema(1.0);
    let (graph, stats) = (Arc::new(graph), Arc::new(stats));

    let first = SummaryService::try_new(ServiceConfig {
        store_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    first.register_named("tpch", Arc::clone(&graph), Arc::clone(&stats));
    drop(first);
    let journal = dir.join("catalog.journal");
    let bytes_after_first = std::fs::metadata(&journal).unwrap().len();

    for _ in 0..3 {
        let service = SummaryService::try_new(ServiceConfig {
            store_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();
        // The idiomatic node startup: register what you serve. Already
        // journaled, so the journal must not grow.
        service.register_named("tpch", Arc::clone(&graph), Arc::clone(&stats));
        drop(service);
    }
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        bytes_after_first
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- cross-node invalidation

/// Admin mutations applied on one node fan out to its peers, marked
/// requests do not re-propagate (loop prevention), and a peer that does
/// not know the schema still counts as delivered (idempotent target).
#[test]
fn admin_mutations_fan_out_to_peers_without_looping() {
    // B is a plain node; A lists B as a peer. Only A knows "tpch".
    let service_b = Arc::new({
        let s = SummaryService::default();
        let (xg, xs, _) = xmark::schema(1.0);
        s.register_named("xmark", Arc::new(xg), Arc::new(xs));
        s
    });
    let (node_b, addr_b) = bind_node(Arc::clone(&service_b), node_config());
    let service_a = build_service();
    let mut config_a = node_config();
    config_a.peers = vec![format!("http://{addr_b}")];
    let (node_a, _) = bind_node(Arc::clone(&service_a), config_a);

    let mut to_a = Client::connect(node_a.local_addr());
    let mut to_b = Client::connect(node_b.local_addr());
    assert_eq!(to_a.get("/healthz").text(), "ok role=node peers=1\n");
    assert_eq!(to_b.get("/healthz").text(), "ok role=node peers=0\n");

    // Warm both caches for xmark.
    let body = "{\"schema\":\"xmark\",\"k\":3}";
    assert_eq!(to_a.post("/v1/summary", body).status, 200);
    assert_eq!(to_b.post("/v1/summary", body).status, 200);
    assert_eq!(service_b.cached_entries().len(), 1);

    // Evict via A: both nodes drop the entry before the 200 returns
    // (fan-out is synchronous with the admin request).
    let evict = "{\"schema\":\"xmark\"}";
    assert_eq!(to_a.post("/admin/evict", evict).status, 200);
    assert_eq!(service_a.cached_entries().len(), 0);
    assert_eq!(service_b.cached_entries().len(), 0);
    assert_eq!(node_a.stats().fanout_sent, 1);
    assert_eq!(node_a.stats().fanout_failed, 0);
    assert_eq!(node_b.stats().fanout_sent, 0, "B has no peers to tell");

    // A marked request applies locally but must not re-propagate: that
    // is what keeps two nodes peered at each other from ping-ponging.
    assert_eq!(to_a.post("/v1/summary", body).status, 200);
    assert_eq!(to_b.post("/v1/summary", body).status, 200);
    let marked = to_a.request(
        "POST",
        "/admin/evict",
        "X-Schema-Summary-Fanout: 1\r\n",
        Some(evict),
    );
    assert_eq!(marked.status, 200);
    assert_eq!(service_a.cached_entries().len(), 0, "applied locally");
    assert_eq!(service_b.cached_entries().len(), 1, "not re-propagated");
    assert_eq!(node_a.stats().fanout_sent, 1, "no new broadcast");

    // A schema only A knows: B answers 404, which counts as delivered —
    // the mutation is moot there, not lost.
    assert_eq!(
        to_a.post("/admin/evict", "{\"schema\":\"tpch\"}").status,
        200
    );
    assert_eq!(node_a.stats().fanout_sent, 2);
    assert_eq!(node_a.stats().fanout_failed, 0);

    // A failed local mutation never propagates.
    assert_eq!(
        to_a.post("/admin/evict", "{\"schema\":\"nope\"}").status,
        404
    );
    assert_eq!(node_a.stats().fanout_sent, 2);

    node_a.shutdown();
    node_b.shutdown();
}
