//! The disk tier's contract, end to end: everything a service spills under
//! `store_dir` rehydrates into an equal artifact in a fresh process-worth
//! of state (a new `SummaryService` over the same directory), and a
//! damaged store degrades to recomputation — never to a wrong answer or a
//! crash.

use proptest::prelude::*;
use schema_summary_algo::Algorithm;
use schema_summary_datasets::xmark;
use schema_summary_service::{ServiceConfig, SummaryService};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh, empty directory under the system temp dir, unique per call so
/// parallel tests never share a store.
fn fresh_store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "schema-summary-persistence-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_over(dir: &std::path::Path) -> SummaryService {
    SummaryService::try_new(ServiceConfig {
        store_dir: Some(dir.to_path_buf()),
        ..Default::default()
    })
    .expect("temp store dir opens")
}

fn algorithm_from(index: u8) -> Algorithm {
    match index % 3 {
        0 => Algorithm::MaxImportance,
        1 => Algorithm::MaxCoverage,
        _ => Algorithm::Balance,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round trip: any flat summary computed into the disk tier is
    /// answered by a restarted service from rehydrated bytes — equal
    /// result, zero algorithm runs, zero matrix computations.
    #[test]
    fn flat_results_rehydrate_equal_without_recomputing(
        alg_index in 0u8..3, k in 2usize..12,
    ) {
        let (graph, stats, _) = xmark::schema(0.25);
        let (graph, stats) = (Arc::new(graph), Arc::new(stats));
        let algorithm = algorithm_from(alg_index);
        let dir = fresh_store_dir("flat");

        let first = service_over(&dir);
        let fp = first.register(Arc::clone(&graph), Arc::clone(&stats));
        let cold = first.summarize(fp, algorithm, k).unwrap();
        prop_assert!(!cold.from_cache);
        prop_assert!(first.cache_stats().disk_writes >= 1);
        drop(first);

        let second = service_over(&dir);
        let fp2 = second.register(Arc::clone(&graph), Arc::clone(&stats));
        prop_assert_eq!(fp2, fp);
        let warm = second.summarize(fp, algorithm, k).unwrap();
        prop_assert!(warm.from_cache, "restart must answer from the disk tier");
        prop_assert_eq!(&*warm.result, &*cold.result);

        let stats_after = second.cache_stats();
        prop_assert_eq!(stats_after.misses, 0);
        prop_assert_eq!(stats_after.disk_hits, 1);
        prop_assert_eq!(stats_after.matrices_computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Round trip for whole drill-down stacks: the rehydrated
    /// `MultiLevelArtifact` (summary levels, parent maps, and wire view)
    /// compares equal to the one originally computed.
    #[test]
    fn multilevel_stacks_rehydrate_equal_without_recomputing(
        alg_index in 0u8..3, coarse in 2usize..5,
    ) {
        let (graph, stats, _) = xmark::schema(0.25);
        let (graph, stats) = (Arc::new(graph), Arc::new(stats));
        let algorithm = algorithm_from(alg_index);
        let sizes = [coarse * 3, coarse];
        let dir = fresh_store_dir("mls");

        let first = service_over(&dir);
        let fp = first.register(Arc::clone(&graph), Arc::clone(&stats));
        let cold = first.multi_level(fp, algorithm, &sizes).unwrap();
        prop_assert!(!cold.from_cache);
        drop(first);

        let second = service_over(&dir);
        second.register(Arc::clone(&graph), Arc::clone(&stats));
        let warm = second.multi_level(fp, algorithm, &sizes).unwrap();
        prop_assert!(warm.from_cache);
        prop_assert_eq!(&*warm.result, &*cold.result);
        prop_assert_eq!(second.cache_stats().matrices_computed, 0);

        // Drill-down over the rehydrated stack works and stays warm.
        let exp = second.expand(fp, algorithm, &sizes, 1, 0).unwrap();
        prop_assert!(exp.from_cache);
        prop_assert_eq!(second.cache_stats().matrices_computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A store whose files were truncated or replaced with garbage answers
/// every request by recomputing — same results, a logged-and-counted
/// corruption, no panic.
#[test]
fn corrupt_store_files_degrade_to_recompute() {
    let (graph, stats, _) = xmark::schema(0.25);
    let (graph, stats) = (Arc::new(graph), Arc::new(stats));
    let dir = fresh_store_dir("corrupt");

    let first = service_over(&dir);
    let fp = first.register(Arc::clone(&graph), Arc::clone(&stats));
    let cold = first.summarize(fp, Algorithm::Balance, 8).unwrap();
    drop(first);

    // Damage every spilled artifact: truncate one, fill the rest with
    // garbage that still carries a plausible length.
    let mut damaged = 0usize;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().enumerate() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "art") {
            if i % 2 == 0 {
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
            } else {
                std::fs::write(&path, b"not an artifact at all").unwrap();
            }
            damaged += 1;
        }
    }
    assert!(
        damaged >= 2,
        "expected matrices + result spills, saw {damaged}"
    );

    let second = service_over(&dir);
    second.register(Arc::clone(&graph), Arc::clone(&stats));
    let recomputed = second.summarize(fp, Algorithm::Balance, 8).unwrap();
    assert!(
        !recomputed.from_cache,
        "corrupt files must not count as hits"
    );
    assert_eq!(*recomputed.result, *cold.result);

    let after = second.cache_stats();
    assert_eq!(after.misses, 1);
    assert_eq!(after.disk_hits, 0);
    assert!(after.disk_corrupt >= 1, "corruption must be counted");
    assert_eq!(
        after.matrices_computed, 1,
        "matrices recomputed from scratch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Invalidation purges every tier: after a schema delta evicts a
/// fingerprint, its spilled artifacts are gone from disk too —
/// `disk_bytes` drops and no stale file can rehydrate under a dead
/// fingerprint.
#[test]
fn invalidation_purges_the_disk_tier() {
    let (graph, stats, _) = xmark::schema(0.25);
    let (graph, stats) = (Arc::new(graph), Arc::new(stats));
    let dir = fresh_store_dir("purge");

    let service = service_over(&dir);
    let name = "xmark";
    let fp = service.register_named(name, Arc::clone(&graph), Arc::clone(&stats));
    service.summarize(fp, Algorithm::Balance, 8).unwrap();
    service
        .multi_level(fp, Algorithm::Balance, &[6, 3])
        .unwrap();
    let before = service.cache_stats();
    assert!(before.disk_bytes > 0, "artifacts must have spilled");
    assert!(before.disk_writes >= 3, "matrices + two results spill");

    // Swapping in schema-driven statistics moves every RC, so the plan
    // wants every row — an oversized delta: the refresh falls back cold
    // and must drop the old fingerprint from memory AND disk.
    let uniform = Arc::new(schema_summary_core::SchemaStats::uniform(&graph));
    let delta = service
        .update_named(name, Arc::clone(&graph), uniform)
        .unwrap();
    assert!(!delta.is_empty());

    let after = service.cache_stats();
    assert_eq!(after.entries, 0, "in-memory results must be gone");
    assert!(
        after.disk_bytes < before.disk_bytes,
        "disk_bytes must drop on invalidation ({} -> {})",
        before.disk_bytes,
        after.disk_bytes
    );
    assert_eq!(
        after.disk_bytes, 0,
        "the only spilled fingerprint was purged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The restart acceptance bar: a restarted server over the same store
/// answers the first repeated request without recomputing anything —
/// no algorithm run, no matrix computation.
#[test]
fn restarted_service_answers_first_request_from_the_store() {
    let (graph, stats, _) = xmark::schema(1.0);
    let (graph, stats) = (Arc::new(graph), Arc::new(stats));
    let dir = fresh_store_dir("restart");

    let first = service_over(&dir);
    let fp = first.register(Arc::clone(&graph), Arc::clone(&stats));
    let flat = first.summarize(fp, Algorithm::Balance, 10).unwrap();
    let ml = first
        .multi_level(fp, Algorithm::Balance, &[12, 6, 3])
        .unwrap();
    assert_eq!(first.cache_stats().matrices_computed, 1);
    drop(first);

    let second = service_over(&dir);
    second.register(Arc::clone(&graph), Arc::clone(&stats));
    let warm_flat = second.summarize(fp, Algorithm::Balance, 10).unwrap();
    let warm_ml = second
        .multi_level(fp, Algorithm::Balance, &[12, 6, 3])
        .unwrap();
    assert!(warm_flat.from_cache && warm_ml.from_cache);
    assert_eq!(*warm_flat.result, *flat.result);
    assert_eq!(*warm_ml.result, *ml.result);

    let after = second.cache_stats();
    assert_eq!(after.misses, 0, "nothing may be recomputed after restart");
    assert_eq!(after.matrices_computed, 0);
    assert_eq!(after.disk_hits, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
