//! End-to-end schema evolution over the MiMI version history (§6.1,
//! Table 1): the schema never changes between April 2004, January 2005,
//! and January 2006 — only the data volumes do — so a serving layer that
//! tracks the catalog through `update_named` should ride the warm delta
//! path across all three versions: matrices spliced rather than rebuilt,
//! answers bit-identical to a cold service over the same version.

use schema_summary_algo::Algorithm;
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_service::{ServiceConfig, SummaryService};
use std::sync::Arc;

const K: usize = 8;
const SIZES: [usize; 2] = [12, 6];

/// Cold baseline: a fresh service computes one version from scratch.
fn cold_answers(
    version: Version,
) -> (
    schema_summary_core::SchemaFingerprint,
    Arc<schema_summary_service::SummaryResult>,
    Arc<schema_summary_service::MultiLevelArtifact>,
) {
    let service = SummaryService::default();
    let (g, s, _) = mimi::schema(version);
    let fp = service.register(Arc::new(g), Arc::new(s));
    let flat = service.summarize(fp, Algorithm::Balance, K).unwrap();
    let ml = service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap();
    assert_eq!(
        service.cache_stats().matrices_computed,
        1,
        "each cold version costs one matrix build"
    );
    (fp, flat.result, ml.result)
}

#[test]
fn mimi_version_history_rides_the_warm_path_bit_identically() {
    // The MiMI deltas are cardinality-wide (every element's volume moves
    // between versions), so the fraction guard must be open.
    let warm = SummaryService::new(ServiceConfig {
        delta_max_fraction: 1.0,
        ..Default::default()
    });
    let (g, s, _) = mimi::schema(Version::Apr04);
    let fp0 = warm.register_named("mimi", Arc::new(g), Arc::new(s));
    warm.summarize(fp0, Algorithm::Balance, K).unwrap();
    warm.multi_level(fp0, Algorithm::Balance, &SIZES).unwrap();
    assert_eq!(warm.cache_stats().matrices_computed, 1);

    // Roll the catalog forward twice; each step must refresh warm and
    // leave the new version's answers already cached.
    let mut served = Vec::new();
    for version in [Version::Jan05, Version::Jan06] {
        let (g, s, _) = mimi::schema(version);
        let delta = warm.update_named("mimi", Arc::new(g), Arc::new(s)).unwrap();
        assert!(!delta.is_empty(), "{version:?} must differ from its parent");
        assert!(delta.changed_cardinalities.len() > 1);

        let flat = warm
            .summarize(delta.new_fingerprint, Algorithm::Balance, K)
            .unwrap();
        assert!(
            flat.from_cache,
            "{version:?} flat answer must be pre-derived"
        );
        let ml = warm
            .multi_level(delta.new_fingerprint, Algorithm::Balance, &SIZES)
            .unwrap();
        assert!(ml.from_cache, "{version:?} stack must be pre-derived");
        served.push((version, delta.new_fingerprint, flat.result, ml.result));
    }

    let stats = warm.cache_stats();
    assert_eq!(stats.delta_refreshes, 2, "both rolls must be served warm");
    assert_eq!(stats.delta_fallback_cold, 0);
    assert!(stats.delta_rows_recomputed >= 2);
    // The cold world pays one matrix build per version (three total); the
    // warm world pays one, ever.
    assert!(stats.matrices_computed < 3);
    assert_eq!(stats.matrices_computed, 1);

    // Every warm answer is bit-identical to a cold service over the same
    // version's content.
    for (version, fp, flat, ml) in &served {
        let (cold_fp, cold_flat, cold_ml) = cold_answers(*version);
        assert_eq!(*fp, cold_fp, "{version:?} fingerprints must agree");
        assert_eq!(**flat, *cold_flat, "{version:?} flat answers must agree");
        assert_eq!(**ml, *cold_ml, "{version:?} stacks must agree");
    }
}
