//! End-to-end schema evolution over the MiMI version history (§6.1,
//! Table 1): the schema never changes between April 2004, January 2005,
//! and January 2006 — only the data volumes do — so a serving layer that
//! tracks the catalog through `update_named` should ride the warm delta
//! path across all three versions: matrices spliced rather than rebuilt
//! (bit-identical to cold), importance fixpoints restarted from the
//! previous version's vector (ε-close, a fraction of the cold
//! iterations — DESIGN.md §3.19).

use schema_summary_algo::importance::compute_importance;
use schema_summary_algo::{Algorithm, SummarizerConfig};
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_service::{ServiceConfig, SummaryService};
use std::sync::Arc;

const K: usize = 8;
const SIZES: [usize; 2] = [12, 6];

/// Cold baseline: a fresh service computes one version from scratch.
fn cold_answers(
    version: Version,
) -> (
    schema_summary_core::SchemaFingerprint,
    Arc<schema_summary_service::SummaryResult>,
    Arc<schema_summary_service::MultiLevelArtifact>,
) {
    let service = SummaryService::default();
    let (g, s, _) = mimi::schema(version);
    let fp = service.register(Arc::new(g), Arc::new(s));
    let flat = service.summarize(fp, Algorithm::Balance, K).unwrap();
    let ml = service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap();
    assert_eq!(
        service.cache_stats().matrices_computed,
        1,
        "each cold version costs one matrix build"
    );
    (fp, flat.result, ml.result)
}

#[test]
fn mimi_version_history_rides_the_warm_path_within_tolerance() {
    // The MiMI deltas are cardinality-wide (every element's volume moves
    // between versions), so the fraction guard must be open.
    let warm = SummaryService::new(ServiceConfig {
        delta_max_fraction: 1.0,
        ..Default::default()
    });
    let (g, s, _) = mimi::schema(Version::Apr04);
    let fp0 = warm.register_named("mimi", Arc::new(g), Arc::new(s));
    warm.summarize(fp0, Algorithm::Balance, K).unwrap();
    warm.multi_level(fp0, Algorithm::Balance, &SIZES).unwrap();
    assert_eq!(warm.cache_stats().matrices_computed, 1);

    // Roll the catalog forward twice; each step must refresh warm and
    // leave the new version's answers already cached.
    let mut served = Vec::new();
    for version in [Version::Jan05, Version::Jan06] {
        let (g, s, _) = mimi::schema(version);
        let delta = warm.update_named("mimi", Arc::new(g), Arc::new(s)).unwrap();
        assert!(!delta.is_empty(), "{version:?} must differ from its parent");
        assert!(delta.changed_cardinalities.len() > 1);

        let flat = warm
            .summarize(delta.new_fingerprint, Algorithm::Balance, K)
            .unwrap();
        assert!(
            flat.from_cache,
            "{version:?} flat answer must be pre-derived"
        );
        let ml = warm
            .multi_level(delta.new_fingerprint, Algorithm::Balance, &SIZES)
            .unwrap();
        assert!(ml.from_cache, "{version:?} stack must be pre-derived");
        served.push((version, delta.new_fingerprint, flat.result, ml.result));
    }

    let stats = warm.cache_stats();
    assert_eq!(stats.delta_refreshes, 2, "both rolls must be served warm");
    assert_eq!(stats.delta_fallback_cold, 0);
    assert!(stats.delta_rows_recomputed >= 2);
    // The cold world pays one matrix build per version (three total); the
    // warm world pays one, ever.
    assert!(stats.matrices_computed < 3);
    assert_eq!(stats.matrices_computed, 1);

    // Both rolled versions restarted their importance fixpoint from the
    // previous version's vector, and the whole seeded chain converged in
    // under a quarter of the iterations a cold world would spend on the
    // same versions. The seeded total is reconstructed from the saved
    // counter: both restarts are measured against the chain's original
    // cold baseline (the Apr04 run, carried forward), so
    // `seeded = 2·baseline − saved`.
    let config = SummarizerConfig::default();
    let (g0, s0, _) = mimi::schema(Version::Apr04);
    let baseline = compute_importance(&g0, &s0, &config.importance).iterations as u64;
    assert!(baseline > 0, "the MiMI fixpoint must iterate");
    assert_eq!(stats.importance_seeded, 2);
    let seeded_total = 2 * baseline - stats.importance_iterations_saved;
    let cold_chain: u64 = [Version::Jan05, Version::Jan06]
        .into_iter()
        .map(|v| {
            let (g, s, _) = mimi::schema(v);
            compute_importance(&g, &s, &config.importance).iterations as u64
        })
        .sum();
    assert!(
        4 * seeded_total <= cold_chain,
        "seeded restarts must converge in <25% of the cold chain: \
         {seeded_total} seeded iterations vs {cold_chain} cold"
    );

    // Every warm answer obeys the tolerance contract against a cold
    // service over the same version's content: selection, labels, and
    // coverage bit-identical (spliced matrices are bit-exact), summary
    // importance ε-close (per-element relative convergence threshold
    // 0.001; 10ε is a loose envelope over the shared stopping ball).
    for (version, fp, flat, ml) in &served {
        let (cold_fp, cold_flat, cold_ml) = cold_answers(*version);
        assert_eq!(*fp, cold_fp, "{version:?} fingerprints must agree");
        assert_eq!(
            flat.selection, cold_flat.selection,
            "{version:?} selections must agree"
        );
        assert_eq!(
            flat.labels, cold_flat.labels,
            "{version:?} labels must agree"
        );
        assert_eq!(
            flat.coverage.to_bits(),
            cold_flat.coverage.to_bits(),
            "{version:?} coverage must be bit-identical"
        );
        let (wi, ci) = (flat.importance, cold_flat.importance);
        assert!(
            (wi - ci).abs() <= 10.0 * 0.001 * ci.abs(),
            "{version:?} summary importance must be ε-close: warm {wi} vs cold {ci}"
        );
        assert_eq!(**ml, *cold_ml, "{version:?} stacks must agree");
    }
}
