//! The optional disk tier of the artifact store: serialized artifacts
//! spilled under their stable content key and rehydrated on restart.
//!
//! Every artifact lives in its own file named
//! `<fingerprint-hex>-<kind>-<keydigest-hex>.art`, where the key digest is
//! the content fingerprint of a canonical key-meta string (algorithm,
//! sizes, summarizer options). The file carries a self-describing
//! envelope — magic, kind byte, the key-meta itself, the producer-reported
//! recomputation cost, the payload, and a 128-bit content checksum — so a
//! load can verify end-to-end that the bytes on disk are exactly an
//! artifact for the requested key.
//!
//! Loading is corruption-tolerant by design: any mismatch (truncated file,
//! wrong magic, checksum failure, key-meta collision) logs a warning,
//! bumps the `corrupt` counter, and returns `None` — the caller recomputes
//! and overwrites. A bad file is never fatal and never served.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so a crash mid-write leaves either the old artifact or none —
//! never a torn one (the checksum catches torn renames on filesystems
//! without atomic rename anyway).

use schema_summary_core::SchemaFingerprint;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Envelope magic: identifies a schema-summary artifact file, version 1.
const MAGIC: &[u8; 8] = b"SSUMART1";

/// Kind byte for serialized [`PairMatrices`](schema_summary_algo::PairMatrices).
pub(crate) const KIND_MATRICES: u8 = 1;
/// Kind byte for a flat [`SummaryResult`](crate::SummaryResult) (JSON payload).
pub(crate) const KIND_FLAT: u8 = 2;
/// Kind byte for a [`MultiLevelArtifact`](crate::MultiLevelArtifact) (JSON payload).
pub(crate) const KIND_MULTILEVEL: u8 = 3;

fn kind_tag(kind: u8) -> &'static str {
    match kind {
        KIND_MATRICES => "mat",
        KIND_FLAT => "sum",
        KIND_MULTILEVEL => "mls",
        _ => "unk",
    }
}

/// Counters for the disk tier, surfaced through
/// [`CacheStats`](crate::CacheStats).
pub(crate) struct DiskTier {
    root: PathBuf,
    /// Byte budget for the directory; `None` grows without bound.
    quota: Option<u64>,
    /// Bytes currently held in `.art` files (best-effort bookkeeping:
    /// seeded by a directory scan at open, updated on every write and
    /// removal this process performs).
    bytes: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    quota_evictions: AtomicU64,
}

impl DiskTier {
    /// Open (creating if necessary) a store directory with no byte quota.
    #[cfg(test)]
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_quota(root, None)
    }

    /// Open (creating if necessary) a store directory. When `quota` is
    /// set, every write that pushes the directory past it evicts spilled
    /// artifacts oldest-first (by modification time) until the total fits
    /// again — evicted artifacts are recomputed on their next request, so
    /// the quota trades recompute time for bounded disk.
    pub fn open_with_quota(root: impl Into<PathBuf>, quota: Option<u64>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut bytes = 0u64;
        for entry in std::fs::read_dir(&root)?.flatten() {
            let is_artifact = entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".art"));
            if is_artifact {
                if let Ok(meta) = entry.metadata() {
                    bytes += meta.len();
                }
            }
        }
        Ok(DiskTier {
            root,
            quota,
            bytes: AtomicU64::new(bytes),
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quota_evictions: AtomicU64::new(0),
        })
    }

    /// Subtract a removed file's size from the byte account, saturating
    /// (concurrent writers make the account best-effort, never wrapping).
    fn debit(&self, len: u64) {
        let _ = self
            .bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(len))
            });
    }

    /// Remove `path` if present, debiting its size. Returns whether a file
    /// was actually removed.
    fn remove_accounted(&self, path: &Path) -> bool {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(path).is_ok() {
            self.debit(len);
            true
        } else {
            false
        }
    }

    /// Evict spilled artifacts oldest-first until the directory fits the
    /// quota again. `keep` (the file just written) is never evicted — a
    /// single artifact larger than the whole quota would otherwise be
    /// deleted before anyone could read it.
    fn enforce_quota(&self, keep: &Path) {
        let Some(quota) = self.quota else {
            return;
        };
        if self.bytes.load(Ordering::Relaxed) <= quota {
            return;
        }
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut victims: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".art"))
                    && e.path() != keep
            })
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        // Oldest first; path as a deterministic tiebreak on coarse clocks.
        victims.sort();
        for (_, path, _) in victims {
            if self.bytes.load(Ordering::Relaxed) <= quota {
                break;
            }
            if self.remove_accounted(&path) {
                self.quota_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn path_for(&self, fingerprint: SchemaFingerprint, kind: u8, meta: &str) -> PathBuf {
        let digest = SchemaFingerprint::of_bytes(meta.as_bytes());
        self.root.join(format!(
            "{}-{}-{}.art",
            fingerprint.to_hex(),
            kind_tag(kind),
            digest.to_hex()
        ))
    }

    fn discard(&self, path: &Path, reason: &str) -> Option<(Vec<u8>, u64)> {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "warning: schema-summary store: discarding corrupt artifact {} ({reason}); will recompute",
            path.display()
        );
        // Best-effort removal so the bad file is not re-parsed forever.
        self.remove_accounted(path);
        None
    }

    /// Load the payload and recomputation cost stored for
    /// `(fingerprint, kind, meta)`, or `None` when absent or corrupt.
    pub fn load(&self, fingerprint: SchemaFingerprint, kind: u8, meta: &str) -> Option<(Vec<u8>, u64)> {
        let path = self.path_for(fingerprint, kind, meta);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return None, // absent (or unreadable): plain miss
        };
        // magic(8) kind(1) meta_len(4) meta cost(8) payload_len(8) payload checksum(16)
        if bytes.len() < 8 + 1 + 4 + 8 + 8 + 16 {
            return self.discard(&path, "truncated header");
        }
        if &bytes[..8] != MAGIC {
            return self.discard(&path, "bad magic");
        }
        let body = &bytes[8..bytes.len() - 16];
        let checksum = SchemaFingerprint::of_bytes(body).to_le_bytes();
        if checksum != bytes[bytes.len() - 16..] {
            return self.discard(&path, "checksum mismatch");
        }
        if body[0] != kind {
            return self.discard(&path, "kind mismatch");
        }
        let meta_len = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
        let rest = &body[5..];
        if rest.len() < meta_len + 16 {
            return self.discard(&path, "truncated key-meta");
        }
        if &rest[..meta_len] != meta.as_bytes() {
            // A digest collision or a file renamed by hand: not ours.
            return self.discard(&path, "key-meta mismatch");
        }
        let rest = &rest[meta_len..];
        let cost = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes")) as usize;
        let payload = &rest[16..];
        if payload.len() != payload_len {
            return self.discard(&path, "payload length mismatch");
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some((payload.to_vec(), cost))
    }

    /// Spill `payload` for `(fingerprint, kind, meta)`. Best-effort: an
    /// I/O failure logs a warning and the artifact simply stays
    /// memory-only.
    pub fn store(
        &self,
        fingerprint: SchemaFingerprint,
        kind: u8,
        meta: &str,
        cost: u64,
        payload: &[u8],
    ) {
        let path = self.path_for(fingerprint, kind, meta);
        let mut body =
            Vec::with_capacity(1 + 4 + meta.len() + 8 + 8 + payload.len());
        body.push(kind);
        body.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        body.extend_from_slice(meta.as_bytes());
        body.extend_from_slice(&cost.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
        let checksum = SchemaFingerprint::of_bytes(&body).to_le_bytes();
        let mut file = Vec::with_capacity(8 + body.len() + 16);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&checksum);
        // Temp-then-rename in the same directory: concurrent writers of the
        // same key race to an identical final content, and readers never
        // observe a half-written file under the final name.
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("artifact")
        ));
        // Debit a file being overwritten before the rename replaces it.
        let previous = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let outcome = std::fs::write(&tmp, &file).and_then(|()| std::fs::rename(&tmp, &path));
        match outcome {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.debit(previous);
                self.bytes.fetch_add(file.len() as u64, Ordering::Relaxed);
                self.enforce_quota(&path);
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!(
                    "warning: schema-summary store: could not spill artifact {}: {e}",
                    path.display()
                );
            }
        }
    }

    /// Remove every spilled artifact of one fingerprint (invalidation).
    pub fn purge(&self, fingerprint: SchemaFingerprint) {
        let prefix = format!("{}-", fingerprint.to_hex());
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".art"))
            {
                self.remove_accounted(&entry.path());
            }
        }
    }

    /// Remove only the spilled *result* artifacts (flat and multi-level
    /// summaries) of one fingerprint, keeping the memoized matrices so a
    /// re-request goes back through scoring without re-exploring the graph.
    /// Returns how many files were removed.
    pub fn purge_results(&self, fingerprint: SchemaFingerprint) -> usize {
        let sum_prefix = format!("{}-{}-", fingerprint.to_hex(), kind_tag(KIND_FLAT));
        let mls_prefix = format!("{}-{}-", fingerprint.to_hex(), kind_tag(KIND_MULTILEVEL));
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_result = name.to_str().is_some_and(|n| {
                (n.starts_with(&sum_prefix) || n.starts_with(&mls_prefix)) && n.ends_with(".art")
            });
            if is_result && self.remove_accounted(&entry.path()) {
                removed += 1;
            }
        }
        removed
    }

    /// Artifacts successfully rehydrated from disk. Service-level code
    /// distinguishes result rehydrations (`CacheStats::disk_hits`) from
    /// matrix rehydrations (`CacheStats::matrices_rehydrated`); this raw
    /// total is only asserted by the tier's own tests.
    #[cfg(test)]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifacts spilled to disk.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Files discarded as corrupt (and recomputed).
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Bytes currently spilled under the store directory (best-effort).
    pub fn bytes_on_disk(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Artifacts evicted to keep the directory under its byte quota.
    pub fn quota_evictions(&self) -> u64 {
        self.quota_evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier() -> (DiskTier, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-disk-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (DiskTier::open(&dir).unwrap(), dir)
    }

    fn fp(seed: &str) -> SchemaFingerprint {
        SchemaFingerprint::of_bytes(seed.as_bytes())
    }

    #[test]
    fn store_then_load_roundtrips_payload_and_cost() {
        let (t, dir) = tier();
        let f = fp("a");
        t.store(f, KIND_MATRICES, "meta-1", 42, b"payload bytes");
        assert_eq!(
            t.load(f, KIND_MATRICES, "meta-1"),
            Some((b"payload bytes".to_vec(), 42))
        );
        assert_eq!(t.hits(), 1);
        assert_eq!(t.writes(), 1);
        assert_eq!(t.corrupt(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn absent_and_mismatched_keys_are_plain_misses() {
        let (t, dir) = tier();
        let f = fp("b");
        assert_eq!(t.load(f, KIND_FLAT, "nothing"), None);
        t.store(f, KIND_FLAT, "meta-a", 1, b"x");
        // Different meta hashes to a different file: a miss, not corruption.
        assert_eq!(t.load(f, KIND_FLAT, "meta-b"), None);
        assert_eq!(t.corrupt(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_file_is_discarded_as_corrupt() {
        let (t, dir) = tier();
        let f = fp("c");
        t.store(f, KIND_MULTILEVEL, "meta", 7, b"some payload");
        let path = t.path_for(f, KIND_MULTILEVEL, "meta");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(t.load(f, KIND_MULTILEVEL, "meta"), None);
        assert_eq!(t.corrupt(), 1);
        // The corrupt file was removed; the next load is a plain miss.
        assert_eq!(t.load(f, KIND_MULTILEVEL, "meta"), None);
        assert_eq!(t.corrupt(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn garbage_file_is_discarded_as_corrupt() {
        let (t, dir) = tier();
        let f = fp("d");
        let path = t.path_for(f, KIND_FLAT, "meta");
        std::fs::write(&path, b"this is not an artifact file at all, but long enough to parse")
            .unwrap();
        assert_eq!(t.load(f, KIND_FLAT, "meta"), None);
        assert_eq!(t.corrupt(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let (t, dir) = tier();
        let f = fp("e");
        t.store(f, KIND_MATRICES, "meta", 3, b"sensitive payload");
        let path = t.path_for(f, KIND_MATRICES, "meta");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(t.load(f, KIND_MATRICES, "meta"), None);
        assert_eq!(t.corrupt(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn quota_evicts_oldest_artifacts_first() {
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-disk-quota-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Each artifact file is 45 bytes of envelope + 1-byte meta +
        // 100-byte payload = 146 bytes; a 300-byte quota holds two.
        let t = DiskTier::open_with_quota(&dir, Some(300)).unwrap();
        let payload = [0u8; 100];
        t.store(fp("q1"), KIND_FLAT, "m", 1, &payload);
        std::thread::sleep(std::time::Duration::from_millis(15));
        t.store(fp("q2"), KIND_FLAT, "m", 1, &payload);
        assert_eq!(t.quota_evictions(), 0);
        assert_eq!(t.bytes_on_disk(), 292);
        std::thread::sleep(std::time::Duration::from_millis(15));
        t.store(fp("q3"), KIND_FLAT, "m", 1, &payload);
        // The oldest artifact made way; the two newest survive.
        assert_eq!(t.quota_evictions(), 1);
        assert_eq!(t.bytes_on_disk(), 292);
        assert_eq!(t.load(fp("q1"), KIND_FLAT, "m"), None);
        assert!(t.load(fp("q2"), KIND_FLAT, "m").is_some());
        assert!(t.load(fp("q3"), KIND_FLAT, "m").is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn quota_never_evicts_the_artifact_just_written() {
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-disk-quota-keep-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Quota smaller than a single artifact: the fresh write survives
        // anyway (it is the only copy) and everything older is evicted.
        let t = DiskTier::open_with_quota(&dir, Some(50)).unwrap();
        t.store(fp("k1"), KIND_FLAT, "m", 1, b"payload one");
        std::thread::sleep(std::time::Duration::from_millis(15));
        t.store(fp("k2"), KIND_FLAT, "m", 1, b"payload two");
        assert_eq!(t.load(fp("k1"), KIND_FLAT, "m"), None);
        assert!(t.load(fp("k2"), KIND_FLAT, "m").is_some());
        assert_eq!(t.quota_evictions(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reopen_seeds_the_byte_account_from_existing_files() {
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-disk-reopen-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let t = DiskTier::open(&dir).unwrap();
            t.store(fp("r1"), KIND_FLAT, "m", 1, b"abc");
            t.store(fp("r2"), KIND_MATRICES, "m", 1, b"defgh");
        }
        let reopened = DiskTier::open_with_quota(&dir, Some(1 << 20)).unwrap();
        let on_disk: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert_eq!(reopened.bytes_on_disk(), on_disk);
        assert!(on_disk > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn purge_results_keeps_matrices() {
        let (t, dir) = tier();
        let f = fp("pr");
        t.store(f, KIND_MATRICES, "m", 1, b"matrices");
        t.store(f, KIND_FLAT, "m", 1, b"flat");
        t.store(f, KIND_MULTILEVEL, "m", 1, b"mls");
        assert_eq!(t.purge_results(f), 2);
        assert!(t.load(f, KIND_MATRICES, "m").is_some());
        assert_eq!(t.load(f, KIND_FLAT, "m"), None);
        assert_eq!(t.load(f, KIND_MULTILEVEL, "m"), None);
        assert_eq!(t.bytes_on_disk(), 45 + 1 + 8); // the matrices file only
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn purge_removes_only_the_fingerprints_files() {
        let (t, dir) = tier();
        let (f1, f2) = (fp("f1"), fp("f2"));
        t.store(f1, KIND_FLAT, "m1", 1, b"one");
        t.store(f1, KIND_MATRICES, "m2", 1, b"two");
        t.store(f2, KIND_FLAT, "m1", 1, b"three");
        t.purge(f1);
        assert_eq!(t.load(f1, KIND_FLAT, "m1"), None);
        assert_eq!(t.load(f1, KIND_MATRICES, "m2"), None);
        assert_eq!(t.load(f2, KIND_FLAT, "m1"), Some((b"three".to_vec(), 1)));
        let _ = std::fs::remove_dir_all(dir);
    }
}
