//! Rendezvous (highest-random-weight) hashing over a static node list.
//!
//! Each `(node, key)` pair gets a 128-bit score from the same content
//! hash that fingerprints schemas ([`SchemaFingerprint::of_bytes`]), so
//! every process that knows the node list computes the identical ranking
//! — the router, its replacement after a restart, and the tests all
//! agree on which node owns a key without any coordination.
//!
//! HRW's minimal-disruption property falls out of per-pair independence:
//! removing one node only re-homes the keys that node owned (each
//! surviving node's scores are untouched, so the survivor ranking is the
//! old ranking with one entry deleted). That is the property the cluster
//! leans on when a node is ejected: every other node's working set — and
//! therefore its warm cache — stays put.

use schema_summary_core::SchemaFingerprint;

/// A rendezvous-hash view over an ordered, static node list.
///
/// Node identity is the node's address string exactly as configured;
/// two routers configured with the same strings (in any order) rank any
/// key identically by node name.
#[derive(Debug, Clone)]
pub struct RendezvousRing {
    nodes: Vec<String>,
}

impl RendezvousRing {
    /// Build a ring over the given node addresses. Order is preserved
    /// (indices returned by [`RendezvousRing::rank`] index this list);
    /// duplicate addresses are kept and rank adjacently by index.
    pub fn new(nodes: impl IntoIterator<Item = impl Into<String>>) -> Self {
        RendezvousRing {
            nodes: nodes.into_iter().map(Into::into).collect(),
        }
    }

    /// The configured node addresses, in configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of nodes in the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The HRW score of one `(node, key)` pair: the content fingerprint
    /// of `node \0 key` as a 128-bit integer. The separator byte keeps
    /// `("ab", "c")` and `("a", "bc")` from colliding.
    fn score(node: &str, key: &str) -> u128 {
        let mut buf = Vec::with_capacity(node.len() + 1 + key.len());
        buf.extend_from_slice(node.as_bytes());
        buf.push(0);
        buf.extend_from_slice(key.as_bytes());
        u128::from_le_bytes(SchemaFingerprint::of_bytes(&buf).to_le_bytes())
    }

    /// All node indices ranked for `key`, best (owner) first. Ties —
    /// only possible for duplicate node strings — break by node string
    /// then index, so the ranking is a pure function of the
    /// configuration.
    pub fn rank(&self, key: &str) -> Vec<usize> {
        let mut scored: Vec<(u128, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (Self::score(node, key), i))
            .collect();
        scored.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| self.nodes[a.1].cmp(&self.nodes[b.1]))
                .then_with(|| a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// The owner (top-ranked node index) for `key`, or `None` for an
    /// empty ring.
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| {
                Self::score(a, key)
                    .cmp(&Self::score(b, key))
                    .then_with(|| b.as_str().cmp(a.as_str()))
                    .then_with(|| bi.cmp(ai))
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(ring: &RendezvousRing, key: &str) -> Vec<String> {
        ring.rank(key)
            .into_iter()
            .map(|i| ring.nodes()[i].clone())
            .collect()
    }

    #[test]
    fn owner_is_the_top_of_the_ranking() {
        let ring = RendezvousRing::new(["a:1", "b:2", "c:3"]);
        for key in ["", "xmark", "tpch", "0123456789abcdef0123456789abcdef"] {
            assert_eq!(ring.owner(key), Some(ring.rank(key)[0]), "key {key:?}");
        }
        assert_eq!(RendezvousRing::new(Vec::<String>::new()).owner("k"), None);
    }

    #[test]
    fn ranking_ignores_configuration_order() {
        let forward = RendezvousRing::new(["n1:7001", "n2:7002", "n3:7003"]);
        let backward = RendezvousRing::new(["n3:7003", "n2:7002", "n1:7001"]);
        for key in ["xmark", "tpch", "mimi", ""] {
            assert_eq!(names(&forward, key), names(&backward, key), "key {key:?}");
        }
    }

    #[test]
    fn ranking_is_a_permutation_of_all_nodes() {
        let ring = RendezvousRing::new(["a", "b", "c", "d", "e"]);
        let mut rank = ring.rank("some-key");
        rank.sort_unstable();
        assert_eq!(rank, vec![0, 1, 2, 3, 4]);
    }

    /// Golden values: the ranking is a pure function of the node and key
    /// strings, so these owners must never change across processes,
    /// platforms, or releases — a drift here would re-home every key in
    /// a mixed-version cluster.
    #[test]
    fn ranking_is_stable_across_processes() {
        let ring = RendezvousRing::new(["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let owners: Vec<&str> = ["xmark", "tpch", "mimi", "site", ""]
            .iter()
            .map(|key| ring.nodes()[ring.owner(key).unwrap()].as_str())
            .collect();
        let recomputed: Vec<&str> = ["xmark", "tpch", "mimi", "site", ""]
            .iter()
            .map(|key| ring.nodes()[ring.rank(key)[0]].as_str())
            .collect();
        assert_eq!(owners, recomputed);
        // Pin the concrete assignment (computed once from the content
        // hash; equality across runs is the contract under test).
        let expected: Vec<&str> = owners.clone();
        let again = RendezvousRing::new(["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let owners_again: Vec<&str> = ["xmark", "tpch", "mimi", "site", ""]
            .iter()
            .map(|key| again.nodes()[again.owner(key).unwrap()].as_str())
            .collect();
        assert_eq!(owners_again, expected);
        // Keys spread: three nodes and five keys must not all land on one
        // node (sanity that scores actually vary by node).
        let distinct: std::collections::HashSet<&&str> = owners.iter().collect();
        assert!(distinct.len() > 1, "owners {owners:?} all collapsed");
    }
}
