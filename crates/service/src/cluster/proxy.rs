//! The cluster router: a std-only HTTP/1.1 proxy process that owns no
//! schemas and computes no summaries — it maps each request's schema
//! identity onto its rendezvous owner and forwards the request there.
//!
//! Request flow per connection (same keep-alive loop and listener
//! plumbing as the node's HTTP server):
//!
//! 1. `/healthz` and `/metrics` answer locally (the router's own role
//!    and counters);
//! 2. everything under `/v1/*` and `/admin/*` extracts a **routing
//!    key** — the schema name or fingerprint carried by the request
//!    (`schema`/`fingerprint`/`old` body fields, or the export path
//!    segment) — and walks the rendezvous ranking for that key:
//!    healthy nodes first in rank order, then ejected ones as a last
//!    resort, up to `1 + retries` attempts with a linear backoff
//!    between them;
//! 3. a connect/transport failure or a `503` moves to the next-ranked
//!    node (these requests are read-only computations or idempotent
//!    admin operations, so re-sending is safe); any other status is the
//!    answer and is relayed untouched.
//!
//! Keying on the *identifier string* keeps the router stateless: it
//! never resolves names to fingerprints (only nodes hold the catalog),
//! it just needs every request for the same identifier to land on the
//! same node so that node's cache tiers do their job.

use crate::cluster::client::{ClientResponse, NodeClient};
use crate::cluster::probe::{HealthProbe, HealthState, ProbeConfig};
use crate::cluster::ring::RendezvousRing;
use crate::http::request::{parse_request, HttpRequest, ParseOutcome};
use crate::http::response::HttpResponse;
use crate::listener::{accept_loop, ConnectionPlumbing, POLL_INTERVAL};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Node base addresses (`host:port` or `http://host:port`), the
    /// static rendezvous membership.
    pub nodes: Vec<String>,
    /// Concurrent client connection cap.
    pub max_connections: usize,
    /// Extra nodes tried after the owner fails (each on the next-ranked
    /// node). `0` disables failover.
    pub retries: usize,
    /// Backoff before retry `n` is `n * retry_backoff`.
    pub retry_backoff: Duration,
    /// Connect/read/write budget per proxied hop.
    pub request_timeout: Duration,
    /// Health-probe cadence and ejection threshold.
    pub probe: ProbeConfig,
    /// One audit line per proxied request on stderr.
    pub log_requests: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            nodes: Vec::new(),
            max_connections: 64,
            retries: 2,
            retry_backoff: Duration::from_millis(20),
            request_timeout: Duration::from_secs(10),
            probe: ProbeConfig::default(),
            log_requests: false,
        }
    }
}

/// Point-in-time router counters.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// TCP connections accepted.
    pub accepted: u64,
    /// Requests answered (proxied or local).
    pub served: u64,
    /// Connections shed by the connection cap.
    pub shed: u64,
    /// Requests successfully answered per node, in node order.
    pub routed: Vec<u64>,
    /// Failover attempts (a request moving past a failed node).
    pub retries: u64,
    /// Proxy hops that ended in a transport error.
    pub proxy_errors: u64,
    /// Nodes currently considered healthy.
    pub nodes_healthy: usize,
    /// Total configured nodes.
    pub nodes_total: usize,
    /// Nodes ejected so far.
    pub ejections: u64,
    /// Nodes re-admitted so far.
    pub readmissions: u64,
}

struct RouterInner {
    config: RouterConfig,
    ring: RendezvousRing,
    client: NodeClient,
    health: Arc<HealthState>,
    plumbing: Arc<ConnectionPlumbing>,
    served: AtomicU64,
    routed: Vec<AtomicU64>,
    retries: AtomicU64,
    proxy_errors: AtomicU64,
}

impl RouterInner {
    fn stats(&self) -> RouterStats {
        RouterStats {
            accepted: self.plumbing.accepted(),
            served: self.served.load(Ordering::Relaxed),
            shed: self.plumbing.shed(),
            routed: self
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            retries: self.retries.load(Ordering::Relaxed),
            proxy_errors: self.proxy_errors.load(Ordering::Relaxed),
            nodes_healthy: self.health.healthy_count(),
            nodes_total: self.ring.len(),
            ejections: self.health.ejections(),
            readmissions: self.health.readmissions(),
        }
    }

    /// The node order for one request: healthy nodes in rendezvous rank
    /// order, then ejected ones (still in rank order) so a fully-dark
    /// health view degrades to plain rendezvous routing instead of
    /// refusing everything.
    fn candidates(&self, key: &str) -> Vec<usize> {
        let ranked = self.ring.rank(key);
        let (healthy, ejected): (Vec<usize>, Vec<usize>) =
            ranked.into_iter().partition(|&i| self.health.is_healthy(i));
        healthy.into_iter().chain(ejected).collect()
    }

    /// Forward one request along the ranking until a node answers.
    fn proxy(&self, req: &HttpRequest) -> HttpResponse {
        let key = routing_key(req);
        let candidates = self.candidates(&key);
        if candidates.is_empty() {
            return HttpResponse::error(503, "no_nodes", "router has no nodes configured");
        }
        let attempts = candidates.len().min(self.config.retries + 1);
        let content_type = req.header("content-type");
        let mut last_status: Option<ClientResponse> = None;
        for (attempt, &node_index) in candidates.iter().take(attempts).enumerate() {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.config.retry_backoff * attempt as u32);
            }
            let node = &self.ring.nodes()[node_index];
            match self
                .client
                .request(node, &req.method, &req.target, content_type, &[], &req.body)
            {
                Ok(resp) if resp.status == 503 => {
                    // Overloaded or shedding: the next-ranked node may
                    // have room. Remember the answer in case no one does.
                    self.health.note_failure(node_index);
                    last_status = Some(resp);
                }
                Ok(resp) => {
                    self.health.note_success(node_index);
                    self.routed[node_index].fetch_add(1, Ordering::Relaxed);
                    return relay(resp);
                }
                Err(_) => {
                    self.proxy_errors.fetch_add(1, Ordering::Relaxed);
                    self.health.note_failure(node_index);
                }
            }
        }
        match last_status {
            Some(resp) => relay(resp),
            None => HttpResponse::error(
                502,
                "bad_gateway",
                format!("no node answered after {attempts} attempts"),
            ),
        }
    }

    fn respond(&self, peer: &str, req: &HttpRequest) -> HttpResponse {
        let started = std::time::Instant::now();
        let path = req.path();
        let response = match (req.method.as_str(), path) {
            ("GET", "/healthz") => HttpResponse::text(
                200,
                format!(
                    "ok role=router nodes={} healthy={}\n",
                    self.ring.len(),
                    self.health.healthy_count()
                ),
            ),
            ("GET", "/metrics") => HttpResponse::text(200, self.render_metrics()),
            (_, "/healthz" | "/metrics") => {
                let mut resp = HttpResponse::error(
                    405,
                    "method_not_allowed",
                    format!("{} {path}", req.method),
                );
                resp.allow = Some("GET");
                resp
            }
            _ if path.starts_with("/v1/") || path.starts_with("/admin/") => self.proxy(req),
            _ => HttpResponse::error(404, "not_found", format!("no route for {path}")),
        };
        self.served.fetch_add(1, Ordering::Relaxed);
        if self.config.log_requests {
            eprintln!(
                "router {peer} \"{} {}\" {} {}us",
                req.method,
                req.target,
                response.status,
                started.elapsed().as_micros()
            );
        }
        response
    }

    fn render_metrics(&self) -> String {
        use crate::http::metrics::{family, labeled};
        let stats = self.stats();
        let mut out = String::new();
        let samples: Vec<(&str, &str, u64)> = self
            .ring
            .nodes()
            .iter()
            .zip(&stats.routed)
            .map(|(node, &count)| ("node", node.as_str(), count))
            .collect();
        labeled(
            &mut out,
            "schema_summary_router_routed_total",
            "counter",
            "Requests answered per node.",
            &samples,
        );
        family(
            &mut out,
            "schema_summary_router_retries_total",
            "counter",
            "Failover attempts past a failed or overloaded node.",
            stats.retries,
        );
        family(
            &mut out,
            "schema_summary_router_proxy_errors_total",
            "counter",
            "Proxied hops that ended in a transport error.",
            stats.proxy_errors,
        );
        family(
            &mut out,
            "schema_summary_router_nodes_healthy",
            "gauge",
            "Nodes currently passing health probes.",
            stats.nodes_healthy as u64,
        );
        family(
            &mut out,
            "schema_summary_router_nodes",
            "gauge",
            "Nodes configured in the rendezvous ring.",
            stats.nodes_total as u64,
        );
        family(
            &mut out,
            "schema_summary_router_ejections_total",
            "counter",
            "Nodes ejected after consecutive failures.",
            stats.ejections,
        );
        family(
            &mut out,
            "schema_summary_router_readmissions_total",
            "counter",
            "Ejected nodes re-admitted by a successful probe.",
            stats.readmissions,
        );
        family(
            &mut out,
            "schema_summary_router_http_accepted_total",
            "counter",
            "TCP connections accepted by the router.",
            stats.accepted,
        );
        family(
            &mut out,
            "schema_summary_router_http_served_total",
            "counter",
            "Requests answered by the router (any status).",
            stats.served,
        );
        family(
            &mut out,
            "schema_summary_router_http_shed_total",
            "counter",
            "Connections shed by the router's connection cap.",
            stats.shed,
        );
        out
    }
}

/// Map a node's response onto the client-facing response, preserving
/// status, body, and (known) content type.
fn relay(resp: ClientResponse) -> HttpResponse {
    let content_type: &'static str = match resp.content_type.as_str() {
        "application/json" => "application/json",
        "text/plain; charset=utf-8" => "text/plain; charset=utf-8",
        "text/markdown; charset=utf-8" => "text/markdown; charset=utf-8",
        _ => "application/octet-stream",
    };
    HttpResponse {
        status: resp.status,
        content_type,
        body: resp.body,
        close: false,
        allow: None,
    }
}

/// Extract the routing key: the schema identifier the request is about.
/// Requests that name nothing (e.g. a defaulted summary against a
/// single-schema deployment) key on the empty string, which still maps
/// them all to one consistent owner.
fn routing_key(req: &HttpRequest) -> String {
    let path = req.path();
    if let Some(target) = path.strip_prefix("/v1/export/") {
        return target.to_string();
    }
    if req.body.is_empty() {
        return String::new();
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return String::new();
    };
    let Ok(value) = serde_json::from_str::<serde_json::Value>(text) else {
        return String::new();
    };
    for field in ["schema", "fingerprint", "old"] {
        if let Some(s) = value.get(field).and_then(|v| v.as_str()) {
            return s.to_string();
        }
    }
    String::new()
}

/// Serve one router connection until close, error, or shutdown (same
/// shape as the node's HTTP connection loop).
fn handle_connection(inner: &Arc<RouterInner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "-".to_string());
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        loop {
            match parse_request(&pending) {
                ParseOutcome::Complete(request, consumed) => {
                    pending.drain(..consumed);
                    let response = inner.respond(&peer, &request);
                    let keep_alive = request.keep_alive() && !response.must_close();
                    if response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
                        return;
                    }
                }
                ParseOutcome::Failed(e) => {
                    inner.served.fetch_add(1, Ordering::Relaxed);
                    let mut resp = HttpResponse::error(400, "malformed", format!("{e:?}"));
                    resp.close = true;
                    let _ = resp.write_to(&mut stream, false);
                    return;
                }
                ParseOutcome::Incomplete => break,
            }
        }
        if inner.plumbing.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A running cluster router.
///
/// Bind with [`ClusterRouter::bind`], point clients at
/// [`ClusterRouter::local_addr`], stop with [`ClusterRouter::shutdown`]
/// (or drop).
pub struct ClusterRouter {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    // Dropped on shutdown, stopping the probe thread.
    probe: Option<HealthProbe>,
}

impl ClusterRouter {
    /// Bind `addr` and start routing over `config.nodes`.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> std::io::Result<ClusterRouter> {
        if config.nodes.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one node",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let ring = RendezvousRing::new(config.nodes.clone());
        let health = Arc::new(HealthState::new(
            config.nodes.clone(),
            config.probe.eject_after,
        ));
        let probe = HealthProbe::start(Arc::clone(&health), config.probe.clone());
        let routed = config.nodes.iter().map(|_| AtomicU64::new(0)).collect();
        let inner = Arc::new(RouterInner {
            client: NodeClient::new(config.request_timeout, config.request_timeout),
            ring,
            health,
            plumbing: Arc::new(ConnectionPlumbing::new(config.max_connections)),
            served: AtomicU64::new(0),
            routed,
            retries: AtomicU64::new(0),
            proxy_errors: AtomicU64::new(0),
            config,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            let serve_inner = Arc::clone(&accept_inner);
            let serve: Arc<dyn Fn(TcpStream) + Send + Sync> =
                Arc::new(move |stream| handle_connection(&serve_inner, stream));
            accept_loop(
                &accept_inner.plumbing,
                listener,
                |mut stream| {
                    let mut resp =
                        HttpResponse::error(503, "overloaded", "connection limit reached");
                    resp.close = true;
                    let _ = resp.write_to(&mut stream, false);
                },
                serve,
            );
        });
        Ok(ClusterRouter {
            inner,
            addr,
            accept_thread: Some(accept_thread),
            probe: Some(probe),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current router counters.
    pub fn stats(&self) -> RouterStats {
        self.inner.stats()
    }

    /// The configured node list, in ring order.
    pub fn nodes(&self) -> &[String] {
        self.inner.ring.nodes()
    }

    /// Block on the accept loop (used by `schema-summary route`).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain connections, stop the
    /// probe. Returns the final counters.
    pub fn shutdown(mut self) -> RouterStats {
        self.shutdown_in_place();
        self.inner.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.inner.plumbing.begin_shutdown(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.inner.plumbing.join_connections();
        self.probe = None;
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_in_place();
        }
    }
}
