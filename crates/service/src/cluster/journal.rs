//! The catalog journal: a checksummed, append-only record of named
//! schema registrations and retirements under `store_dir`, so a
//! restarted node rehydrates its catalog instead of waiting for an
//! embedder to re-register every schema.
//!
//! The disk artifact tier (`disk.rs`) already persists *derived* state —
//! matrices and results — keyed by fingerprint; what it cannot recover
//! is the catalog itself (which graphs exist, under which names). The
//! journal closes that gap with the same envelope discipline: each
//! record is `magic(8) kind(1) payload_len(8 LE) payload checksum(16)`,
//! where the checksum is the 128-bit content fingerprint of everything
//! between the magic and the checksum, exactly as artifact files are
//! verified. Payloads are JSON: a `register` record carries the schema
//! name, graph, and stats; a `retire` record carries a fingerprint whose
//! content left the catalog (delta refresh, invalidation).
//!
//! Replay applies records in order — register, retire — reproducing the
//! live sequence of catalog operations, and stops at the first damaged
//! record: an append interrupted mid-write leaves a torn tail that is
//! counted and ignored, never served, and overwritten by later appends.
//! Replayed registrations then rehydrate their matrices from the disk
//! tier as usual, so a restart recovers names, graphs, *and* warm
//! artifacts with zero recomputation.

use schema_summary_core::{SchemaFingerprint, SchemaGraph, SchemaStats};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal record magic: schema-summary catalog journal, version 1.
const MAGIC: &[u8; 8] = b"SSUMCAT1";

/// Kind byte for a named registration.
const KIND_REGISTER: u8 = 1;
/// Kind byte for a fingerprint retirement.
const KIND_RETIRE: u8 = 2;

/// File name under the store directory.
const FILE_NAME: &str = "catalog.journal";

/// One replayed catalog operation.
#[derive(Debug)]
pub(crate) enum JournalEntry {
    /// `register_named(name, graph, stats)` happened.
    Register {
        /// The request-facing schema name.
        name: String,
        /// The registered annotated graph (boxed: a graph dwarfs the
        /// retire variant, and replay moves entries around by value).
        graph: Box<SchemaGraph>,
        /// Its cardinality statistics (boxed for the same reason — the
        /// SoA edge lanes make the stats struct itself wide).
        stats: Box<SchemaStats>,
    },
    /// The fingerprint's content was invalidated out of the catalog.
    Retire(SchemaFingerprint),
}

/// JSON payload of a register/retire record. One tolerant shape for
/// both kinds keeps decoding simple: absent fields simply stay `None`.
#[derive(serde::Serialize, serde::Deserialize)]
struct RecordPayload {
    name: Option<String>,
    graph: Option<SchemaGraph>,
    stats: Option<SchemaStats>,
    fingerprint: Option<String>,
}

/// An open, appendable catalog journal.
pub(crate) struct CatalogJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl CatalogJournal {
    /// The journal path under a store directory.
    pub fn path_under(dir: &Path) -> PathBuf {
        dir.join(FILE_NAME)
    }

    /// Open (creating if necessary) the journal for appending.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        let path = Self::path_under(dir);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(CatalogJournal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Append one framed record. Failures are reported but deliberately
    /// non-fatal to the caller's request: a full disk must not take
    /// serving down, it only costs rehydration fidelity on the next
    /// restart.
    fn append(&self, kind: u8, payload: &[u8]) {
        let mut body = Vec::with_capacity(9 + payload.len());
        body.push(kind);
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
        let checksum = SchemaFingerprint::of_bytes(&body).to_le_bytes();
        let mut record = Vec::with_capacity(8 + body.len() + 16);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&body);
        record.extend_from_slice(&checksum);
        let mut file = self.file.lock().expect("journal file poisoned");
        if let Err(e) = file.write_all(&record).and_then(|()| file.flush()) {
            eprintln!(
                "schema-summary: catalog journal append failed ({}): {e}",
                self.path.display()
            );
        }
    }

    /// Record a named registration.
    pub fn append_register(&self, name: &str, graph: &SchemaGraph, stats: &SchemaStats) {
        let payload = RecordPayload {
            name: Some(name.to_string()),
            graph: Some(graph.clone()),
            stats: Some(stats.clone()),
            fingerprint: None,
        };
        let json = serde_json::to_string(&payload).expect("journal payload serializes");
        self.append(KIND_REGISTER, json.as_bytes());
    }

    /// Record a fingerprint retirement.
    pub fn append_retire(&self, fingerprint: SchemaFingerprint) {
        let payload = RecordPayload {
            name: None,
            graph: None,
            stats: None,
            fingerprint: Some(fingerprint.to_hex()),
        };
        let json = serde_json::to_string(&payload).expect("journal payload serializes");
        self.append(KIND_RETIRE, json.as_bytes());
    }

    /// Replay the journal under `dir`. Returns the decoded operations in
    /// append order plus the number of damaged records skipped (a
    /// damaged record ends the replay: everything after a torn write is
    /// unframed bytes).
    pub fn replay(dir: &Path) -> (Vec<JournalEntry>, u64) {
        let path = Self::path_under(dir);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut file) => {
                if file.read_to_end(&mut bytes).is_err() {
                    return (Vec::new(), 1);
                }
            }
            Err(_) => return (Vec::new(), 0),
        }
        let mut entries = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Some((entry, consumed)) => {
                    if let Some(entry) = entry {
                        entries.push(entry);
                    }
                    offset += consumed;
                }
                None => {
                    eprintln!(
                        "schema-summary: catalog journal damaged at byte {offset} ({}); \
                         replay truncated",
                        path.display()
                    );
                    return (entries, 1);
                }
            }
        }
        (entries, 0)
    }
}

/// Decode one record at the head of `bytes`. Returns the entry (or
/// `None` for a verified record of unknown kind — forward compatibility)
/// and the bytes consumed; `None` overall means the frame is damaged.
#[allow(clippy::type_complexity)]
fn decode_record(bytes: &[u8]) -> Option<(Option<JournalEntry>, usize)> {
    if bytes.len() < 8 + 9 + 16 || &bytes[..8] != MAGIC {
        return None;
    }
    let kind = bytes[8];
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")) as usize;
    let body_end = 17usize.checked_add(payload_len)?;
    let record_end = body_end.checked_add(16)?;
    if bytes.len() < record_end {
        return None;
    }
    let body = &bytes[8..body_end];
    let checksum =
        SchemaFingerprint::from_le_bytes(bytes[body_end..record_end].try_into().expect("16 bytes"));
    if SchemaFingerprint::of_bytes(body) != checksum {
        return None;
    }
    let payload = &bytes[17..body_end];
    let text = std::str::from_utf8(payload).ok()?;
    let decoded: RecordPayload = serde_json::from_str(text).ok()?;
    let entry = match kind {
        KIND_REGISTER => match (decoded.name, decoded.graph, decoded.stats) {
            (Some(name), Some(graph), Some(stats)) => Some(JournalEntry::Register {
                name,
                graph: Box::new(graph),
                stats: Box::new(stats),
            }),
            _ => return None,
        },
        KIND_RETIRE => {
            let hex = decoded.fingerprint?;
            Some(JournalEntry::Retire(SchemaFingerprint::from_hex(&hex)?))
        }
        _ => None, // verified but unknown: skip, keep replaying
    };
    Some((entry, record_end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-journal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("db");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        b.add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        let graph = b.build().unwrap();
        let stats = SchemaStats::uniform(&graph);
        (graph, stats)
    }

    #[test]
    fn register_and_retire_round_trip_in_order() {
        let dir = temp_dir("roundtrip");
        let (graph, stats) = fixture();
        let fp = SchemaFingerprint::of_bytes(b"gone");
        {
            let journal = CatalogJournal::open(&dir).unwrap();
            journal.append_register("db", &graph, &stats);
            journal.append_retire(fp);
            journal.append_register("db2", &graph, &stats);
        }
        let (entries, corrupt) = CatalogJournal::replay(&dir);
        assert_eq!(corrupt, 0);
        assert_eq!(entries.len(), 3);
        match &entries[0] {
            JournalEntry::Register { name, graph: g, .. } => {
                assert_eq!(name, "db");
                assert_eq!(g.as_ref(), &graph);
            }
            other => panic!("expected register, got {other:?}"),
        }
        match &entries[1] {
            JournalEntry::Retire(retired) => assert_eq!(*retired, fp),
            other => panic!("expected retire, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_replays_empty() {
        let dir = temp_dir("missing");
        let (entries, corrupt) = CatalogJournal::replay(&dir);
        assert!(entries.is_empty());
        assert_eq!(corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_replay_without_losing_the_prefix() {
        let dir = temp_dir("torn");
        let (graph, stats) = fixture();
        {
            let journal = CatalogJournal::open(&dir).unwrap();
            journal.append_register("db", &graph, &stats);
            journal.append_register("db2", &graph, &stats);
        }
        // Tear the last record: chop bytes off the file's tail.
        let path = CatalogJournal::path_under(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (entries, corrupt) = CatalogJournal::replay(&dir);
        assert_eq!(corrupt, 1);
        assert_eq!(entries.len(), 1, "the intact prefix survives");
        // A flipped payload byte is caught by the checksum, not served.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let (entries, corrupt) = CatalogJournal::replay(&dir);
        assert_eq!(corrupt, 1);
        assert!(entries.len() <= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
