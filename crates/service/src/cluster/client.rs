//! A minimal blocking HTTP/1.1 client for node-to-node traffic: the
//! router's proxy hop and the admin fan-out both speak through it.
//!
//! The client understands exactly the subset of HTTP/1.1 the serving
//! tier emits — a status line, `Content-Length`-framed bodies, and an
//! explicit `Connection` header on every response — so it can stay
//! dependency-free and keep one reusable connection per node: a request
//! takes a pooled connection when one exists, and returns it after a
//! `Connection: keep-alive` response. A pooled connection that has gone
//! stale (the node restarted, an idle timeout fired) fails on first use
//! and is replaced by one fresh connect before the error is reported, so
//! keep-alive reuse never turns a healthy node into a spurious failure.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// A parsed response from a node.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// The full body.
    pub body: Vec<u8>,
    /// Whether the node asked to keep the connection open.
    keep_alive: bool,
}

/// A pooled HTTP/1.1 client, safe to share across threads.
pub struct NodeClient {
    connect_timeout: Duration,
    io_timeout: Duration,
    pool: Mutex<HashMap<String, Vec<TcpStream>>>,
}

/// Strip an optional `http://` scheme and trailing slash, leaving the
/// `host:port` authority the socket layer wants.
pub(crate) fn authority(node: &str) -> &str {
    node.trim_start_matches("http://").trim_end_matches('/')
}

impl NodeClient {
    /// Create a client with the given connect and per-request I/O
    /// timeouts.
    pub fn new(connect_timeout: Duration, io_timeout: Duration) -> Self {
        NodeClient {
            connect_timeout,
            io_timeout,
            pool: Mutex::new(HashMap::new()),
        }
    }

    fn take_pooled(&self, node: &str) -> Option<TcpStream> {
        self.pool
            .lock()
            .expect("client pool poisoned")
            .get_mut(node)
            .and_then(Vec::pop)
    }

    fn return_pooled(&self, node: &str, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("client pool poisoned");
        let slot = pool.entry(node.to_string()).or_default();
        // A small per-node bound: beyond it, just close. The router's
        // connection-per-client-thread model rarely needs more.
        if slot.len() < 8 {
            slot.push(stream);
        }
    }

    fn connect(&self, node: &str) -> io::Result<TcpStream> {
        use std::net::ToSocketAddrs;
        let authority = authority(node);
        let addr = authority.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad node address '{node}'"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Issue one request against `node`. `headers` are extra header
    /// lines (name, value); the body, when present, is sent with
    /// `Content-Length`. Transport failures on a pooled (possibly stale)
    /// connection retry once on a fresh connect; failures on the fresh
    /// connection propagate.
    pub fn request(
        &self,
        node: &str,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        if let Some(stream) = self.take_pooled(node) {
            // A pooled connection may have died idle; on failure the
            // fresh connect below decides whether the node is really
            // gone.
            if let Ok(resp) =
                self.round_trip(stream, node, method, target, content_type, headers, body)
            {
                return Ok(resp);
            }
        }
        let stream = self.connect(node)?;
        self.round_trip(stream, node, method, target, content_type, headers, body)
    }

    #[allow(clippy::too_many_arguments)]
    fn round_trip(
        &self,
        mut stream: TcpStream,
        node: &str,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\n",
            authority(node)
        );
        if let Some(ct) = content_type {
            head.push_str(&format!("Content-Type: {ct}\r\n"));
        }
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_response(&mut stream)?;
        if response.keep_alive {
            self.return_pooled(node, stream);
        }
        Ok(response)
    }
}

/// Read exactly one response off `stream`: head through the blank line,
/// then `Content-Length` body bytes. The serving tier always sends a
/// length, so anything else is a protocol error.
fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let mut pending: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find(&pending, b"\r\n\r\n") {
            break pos;
        }
        if pending.len() > 64 * 1024 {
            return Err(protocol_error("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol_error("connection closed before response head"));
        }
        pending.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&pending[..head_end])
        .map_err(|_| protocol_error("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| protocol_error("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    let mut content_type = String::new();
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| protocol_error("bad Content-Length"))?,
                );
            }
            "content-type" => content_type = value.to_string(),
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let len = content_length.ok_or_else(|| protocol_error("response without Content-Length"))?;
    let body_start = head_end + 4;
    let mut body: Vec<u8> = pending[body_start..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(protocol_error("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    Ok(ClientResponse {
        status,
        content_type,
        body,
        keep_alive,
    })
}

fn protocol_error(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}
