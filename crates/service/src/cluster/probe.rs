//! Per-node health tracking: a background prober plus failure reports
//! from the proxy path.
//!
//! Every node starts healthy. A node is **ejected** (marked unhealthy,
//! skipped by routing) after `eject_after` consecutive failures —
//! whether those came from the background `GET /healthz` probe or from
//! real proxy traffic, so a crashed owner leaves the rotation after a
//! few failed requests instead of waiting out a probe interval. It is
//! **re-admitted** the moment one probe succeeds: re-admission is the
//! prober's job alone, so a node that answers probes but sheds real
//! traffic (`503`) oscillates at probe cadence rather than per-request.
//!
//! Routing treats health as advice, not a gate: the proxy prefers
//! healthy nodes in rendezvous order but falls back to ejected ones when
//! nothing healthy is left, so a probe outage can degrade latency but
//! never manufactures a total outage.

use crate::cluster::client::NodeClient;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Health-probe tuning.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Delay between probe rounds.
    pub interval: Duration,
    /// Consecutive failures (probe or proxy) before a node is ejected.
    pub eject_after: u32,
    /// Per-probe connect/read budget.
    pub timeout: Duration,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: Duration::from_millis(1000),
            eject_after: 3,
            timeout: Duration::from_millis(500),
        }
    }
}

/// Shared health state: one flag and failure counter per node.
pub(crate) struct HealthState {
    nodes: Vec<String>,
    healthy: Vec<AtomicBool>,
    failures: Vec<AtomicU32>,
    eject_after: u32,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

impl HealthState {
    pub fn new(nodes: Vec<String>, eject_after: u32) -> Self {
        let healthy = nodes.iter().map(|_| AtomicBool::new(true)).collect();
        let failures = nodes.iter().map(|_| AtomicU32::new(0)).collect();
        HealthState {
            nodes,
            healthy,
            failures,
            eject_after: eject_after.max(1),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }

    pub fn is_healthy(&self, node: usize) -> bool {
        self.healthy[node].load(Ordering::Acquire)
    }

    pub fn healthy_count(&self) -> usize {
        self.healthy
            .iter()
            .filter(|h| h.load(Ordering::Acquire))
            .count()
    }

    pub fn ejections(&self) -> u64 {
        self.ejections.load(Ordering::Relaxed)
    }

    pub fn readmissions(&self) -> u64 {
        self.readmissions.load(Ordering::Relaxed)
    }

    /// Record a failure against a node (probe or proxy). Ejects after
    /// the configured consecutive-failure threshold.
    pub fn note_failure(&self, node: usize) {
        let failures = self.failures[node].fetch_add(1, Ordering::AcqRel) + 1;
        if failures >= self.eject_after && self.healthy[node].swap(false, Ordering::AcqRel) {
            self.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a successful proxy round trip: clears the failure streak
    /// but does not re-admit (that is the prober's call).
    pub fn note_success(&self, node: usize) {
        self.failures[node].store(0, Ordering::Release);
    }

    /// Record a successful probe: clears the streak and re-admits.
    fn note_probe_success(&self, node: usize) {
        self.failures[node].store(0, Ordering::Release);
        if !self.healthy[node].swap(true, Ordering::AcqRel) {
            self.readmissions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The background prober: polls every node's `/healthz` on an interval
/// and maintains the shared [`HealthState`]. Dropping it stops the
/// thread.
pub(crate) struct HealthProbe {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Run one probe round over every node, updating `state`.
pub(crate) fn probe_round(state: &HealthState, client: &NodeClient) {
    for (i, node) in state.nodes.iter().enumerate() {
        let alive = client
            .request(node, "GET", "/healthz", None, &[], b"")
            .map(|resp| resp.status == 200)
            .unwrap_or(false);
        if alive {
            state.note_probe_success(i);
        } else {
            state.note_failure(i);
        }
    }
}

impl HealthProbe {
    /// Start probing. The probe keeps its own client so a wedged node
    /// cannot starve the proxy's connection pool.
    pub fn start(state: Arc<HealthState>, config: ProbeConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_state = state;
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let client = NodeClient::new(config.timeout, config.timeout);
            while !thread_stop.load(Ordering::Acquire) {
                probe_round(&thread_state, &client);
                // Sleep in short slices so shutdown is prompt even with
                // a long probe interval.
                let mut remaining = config.interval;
                while !thread_stop.load(Ordering::Acquire) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        HealthProbe {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for HealthProbe {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_needs_the_full_streak_and_readmission_is_probe_only() {
        let state = HealthState::new(vec!["a:1".into(), "b:2".into()], 3);
        assert!(state.is_healthy(0));
        state.note_failure(0);
        state.note_failure(0);
        assert!(state.is_healthy(0), "two failures stay under the threshold");
        state.note_failure(0);
        assert!(!state.is_healthy(0));
        assert_eq!(state.ejections(), 1);
        assert_eq!(state.healthy_count(), 1);
        // A proxy success clears the streak but does not re-admit.
        state.note_success(0);
        assert!(!state.is_healthy(0));
        // A probe success re-admits.
        state.note_probe_success(0);
        assert!(state.is_healthy(0));
        assert_eq!(state.readmissions(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let state = HealthState::new(vec!["a:1".into()], 2);
        state.note_failure(0);
        state.note_success(0);
        state.note_failure(0);
        assert!(state.is_healthy(0), "streak was broken by the success");
        state.note_failure(0);
        assert!(!state.is_healthy(0));
    }
}
