//! The cluster tier: scale-out primitives layered on the single-node
//! serving stack.
//!
//! Three concerns live here, each deliberately small and std-only:
//!
//! * **Routing** ([`ring`], [`proxy`]) — a stateless router process maps
//!   each request's schema identity onto an owner node via rendezvous
//!   hashing and proxies it there, with rank-ordered failover when the
//!   owner is down or shedding.
//! * **Health** ([`probe`]) — per-node `/healthz` probing with
//!   consecutive-failure ejection and probe-driven re-admission; routing
//!   treats health as advice, falling back to ejected nodes rather than
//!   refusing service.
//! * **Durability** ([`journal`]) — a checksummed append-only catalog
//!   journal under the store directory, replayed at startup so a
//!   restarted node serves previously registered schemas without
//!   re-registration.
//!
//! Cross-node invalidation (the admin fan-out) lives in the HTTP layer
//! (`http::fanout`), since it is a node-side concern; it shares the
//! [`client::NodeClient`] transport defined here.

pub mod client;
pub mod journal;
pub mod probe;
pub mod proxy;
pub mod ring;

pub use client::{ClientResponse, NodeClient};
pub use probe::ProbeConfig;
pub use proxy::{ClusterRouter, RouterConfig, RouterStats};
pub use ring::RendezvousRing;
