//! TCP front-end for [`SummaryService`]: line-delimited JSON over
//! `std::net` with a fixed worker pool, bounded admission, per-request
//! timeouts, a connection cap, and graceful shutdown.
//!
//! # Protocol
//!
//! One [`SummaryRequest`] JSON object per line in, one [`ServerReply`]
//! JSON object per line out, in request order. Clients may pipeline:
//! write any number of request lines without waiting; replies come back
//! in the same order, each echoing a 1-based per-connection `seq`. Blank
//! lines and lines starting with `#` are ignored (same as the JSONL batch
//! driver).
//!
//! # Backpressure and failure semantics
//!
//! * Requests are executed by a fixed pool of workers behind a **bounded**
//!   queue; when the queue is full the request is answered immediately
//!   with an `overloaded` error instead of buffering without bound.
//! * Connections beyond [`ServerConfig::max_connections`] receive one
//!   `overloaded` reply and are closed.
//! * A request that does not complete within
//!   [`ServerConfig::request_timeout`] is answered with a `timeout` error;
//!   the computation keeps running on its worker and warms the cache for
//!   the next attempt.
//! * [`SummaryServer::shutdown`] stops accepting, lets every connection
//!   finish the requests it has already read, drains the worker queue,
//!   and joins all threads.

use crate::listener::{accept_loop, ConnectionPlumbing, POLL_INTERVAL};
use crate::pool::WorkerPool;
use crate::service::{
    ExpandResult, MultiLevelResult, ServedReply, ServiceError, SummaryRequest, SummaryResult,
    SummaryService,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`SummaryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing summarize requests.
    pub workers: usize,
    /// Bound on requests waiting for a worker; beyond it requests are shed
    /// with an `overloaded` error.
    pub queue_capacity: usize,
    /// Concurrent connection cap; further connections get one
    /// `overloaded` reply and are closed.
    pub max_connections: usize,
    /// Per-request wall-clock budget; slower answers become `timeout`
    /// errors.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Point-in-time server counters, alongside
/// [`CacheStats`](crate::CacheStats) for the cache underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// TCP connections accepted (including ones shed by the connection
    /// cap).
    pub accepted: u64,
    /// Requests answered, successfully or with a request-level error.
    pub served: u64,
    /// Requests and connections shed by the queue bound or connection cap.
    pub shed: u64,
    /// Requests that exceeded the per-request timeout.
    pub timed_out: u64,
    /// Connections currently open.
    pub active_connections: usize,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accepted, {} served, {} shed, {} timed out, {} active",
            self.accepted, self.served, self.shed, self.timed_out, self.active_connections
        )
    }
}

/// One response line. Exactly one of `ok` / `multilevel` / `expansion` /
/// `error` is set, matching the request shape. `seq` echoes the 1-based
/// position of the request on its connection so pipelined clients can
/// correlate. Cache disposition is deliberately *not* on the wire:
/// concurrent clients must receive byte-identical answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReply {
    /// 1-based request number within the connection (0 on connection-level
    /// errors such as the connection cap, which precede any request).
    pub seq: u64,
    /// The computed flat summary, when a flat request succeeded.
    pub ok: Option<SummaryResult>,
    /// The multi-level summary, when a `levels` request succeeded.
    pub multilevel: Option<MultiLevelResult>,
    /// The drill-down expansion, when an `expand` request succeeded.
    pub expansion: Option<ExpandResult>,
    /// The structured error, when the request did not succeed.
    pub error: Option<WireError>,
}

impl ServerReply {
    fn empty(seq: u64) -> Self {
        ServerReply {
            seq,
            ok: None,
            multilevel: None,
            expansion: None,
            error: None,
        }
    }

    fn ok(seq: u64, result: &SummaryResult) -> Self {
        ServerReply {
            ok: Some(result.clone()),
            ..Self::empty(seq)
        }
    }

    fn multilevel(seq: u64, result: &MultiLevelResult) -> Self {
        ServerReply {
            multilevel: Some(result.clone()),
            ..Self::empty(seq)
        }
    }

    fn expansion(seq: u64, result: ExpandResult) -> Self {
        ServerReply {
            expansion: Some(result),
            ..Self::empty(seq)
        }
    }

    fn error(seq: u64, kind: &str, message: impl Into<String>) -> Self {
        ServerReply {
            error: Some(WireError {
                kind: kind.to_string(),
                message: message.into(),
            }),
            ..Self::empty(seq)
        }
    }
}

/// A structured request failure: a stable machine-readable `kind`
/// (`overloaded`, `timeout`, `malformed`, `bad_request`, `unknown_schema`,
/// `unknown_fingerprint`, `algo`, `internal`) plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

pub(crate) fn service_error_kind(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::UnknownSchema(_) => "unknown_schema",
        ServiceError::UnknownFingerprint(_) => "unknown_fingerprint",
        ServiceError::BadRequest(_) => "bad_request",
        ServiceError::Algo(_) => "algo",
    }
}

struct Inner {
    service: Arc<SummaryService>,
    config: ServerConfig,
    pool: WorkerPool,
    plumbing: Arc<ConnectionPlumbing>,
    served: AtomicU64,
    timed_out: AtomicU64,
}

impl Inner {
    /// Parse and answer one request line (already non-empty, non-comment).
    fn process_line(&self, seq: u64, line: &str) -> ServerReply {
        let request: SummaryRequest = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                return ServerReply::error(seq, "malformed", format!("{e}"));
            }
        };
        let (tx, rx) = mpsc::channel();
        let service = Arc::clone(&self.service);
        let admitted = self.pool.try_execute(move || {
            let _ = tx.send(service.handle_request(&request));
        });
        if admitted.is_err() {
            self.plumbing.count_shed();
            return ServerReply::error(seq, "overloaded", "request queue is full");
        }
        match rx.recv_timeout(self.config.request_timeout) {
            Ok(Ok(served)) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                match served {
                    ServedReply::Flat(flat) => ServerReply::ok(seq, &flat.result),
                    ServedReply::MultiLevel(ml) => ServerReply::multilevel(seq, &ml.result.view),
                    ServedReply::Expansion(exp) => ServerReply::expansion(seq, exp.result),
                }
            }
            Ok(Err(e)) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                ServerReply::error(seq, service_error_kind(&e), format!("{e}"))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                ServerReply::error(
                    seq,
                    "timeout",
                    format!("request exceeded {:?}", self.config.request_timeout),
                )
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                ServerReply::error(seq, "internal", "worker dropped the request")
            }
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.plumbing.accepted(),
            served: self.served.load(Ordering::Relaxed),
            shed: self.plumbing.shed(),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            active_connections: self.plumbing.active(),
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &ServerReply) -> std::io::Result<()> {
    let line = serde_json::to_string(reply).expect("reply serializes");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Serve one connection: split the byte stream on `\n`, answer each line
/// in order. Reads poll with a short timeout so the thread notices
/// shutdown; lines already received are always answered before exit.
fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut seq = 0u64;
    loop {
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            seq += 1;
            let reply = inner.process_line(seq, line);
            if write_reply(&mut stream, &reply).is_err() {
                return;
            }
        }
        if inner.plumbing.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A running TCP front-end over a shared [`SummaryService`].
///
/// Bind with [`SummaryServer::bind`], connect line-delimited JSON clients
/// to [`SummaryServer::local_addr`], and stop with
/// [`SummaryServer::shutdown`] (or drop the server, which shuts down too).
pub struct SummaryServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl SummaryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections for `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<SummaryService>,
        config: ServerConfig,
    ) -> std::io::Result<SummaryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service,
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            plumbing: Arc::new(ConnectionPlumbing::new(config.max_connections)),
            config,
            served: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            let serve_inner = Arc::clone(&accept_inner);
            let serve: Arc<dyn Fn(TcpStream) + Send + Sync> =
                Arc::new(move |stream| handle_connection(&serve_inner, stream));
            accept_loop(
                &accept_inner.plumbing,
                listener,
                |mut stream| {
                    let _ = write_reply(
                        &mut stream,
                        &ServerReply::error(0, "overloaded", "connection limit reached"),
                    );
                },
                serve,
            );
        });
        Ok(SummaryServer {
            inner,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<SummaryService> {
        &self.inner.service
    }

    /// Block on the accept loop (which runs until shutdown or a listener
    /// failure). Used by the CLI's socket mode; connections keep being
    /// served while this blocks.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, answer every request already
    /// read from open connections, drain the worker queue, join all
    /// threads. Returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.inner.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.inner.plumbing.begin_shutdown(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.inner.plumbing.join_connections();
        self.inner.pool.shutdown();
    }
}

impl Drop for SummaryServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_in_place();
        }
    }
}
