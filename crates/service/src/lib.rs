//! Concurrent summary-serving layer for schema summarization.
//!
//! The paper's use case is interactive (Section 5): users explore an
//! unfamiliar schema by repeatedly requesting summaries at different sizes
//! and with different algorithms over a mostly-static database. The
//! one-shot pipeline recomputes cardinality annotations, the importance
//! fixpoint, and the all-pairs affinity matrices on every call; this crate
//! turns it into an embeddable, thread-safe service that pays those costs
//! once per schema:
//!
//! * [`SchemaCatalog`] registers annotated schema graphs under a
//!   content [`SchemaFingerprint`](schema_summary_core::SchemaFingerprint)
//!   — structurally identical registrations share one entry;
//! * each catalog entry memoizes the importance vector, the all-pairs
//!   affinity/coverage matrices, and the dominance set once per
//!   configuration, shared across requests via `Arc`;
//! * [`SummaryService`] answers `MaxImportance` / `MaxCoverage` /
//!   `BalanceSummary` requests through a tiered `ArtifactStore`: a sharded
//!   LRU result cache keyed by `(fingerprint, shape, options)` — where a
//!   shape is a flat size `k` or a multi-level size stack — plus an
//!   optional disk tier ([`ServiceConfig::store_dir`]) that spills
//!   serialized matrices and results and rehydrates them across restarts,
//!   tolerating corrupt files by recomputing;
//! * multi-level summaries are first-class requests: `levels` builds and
//!   caches a whole drill-down stack once, and `expand` opens one group a
//!   level down by walking the cached stack — a warm expand never
//!   recomputes matrices;
//! * invalidation consumes [`SchemaDelta`](schema_summary_core::SchemaDelta)s
//!   to evict exactly the affected fingerprint — from every tier,
//!   including spilled files — instead of flushing the world;
//! * cold computations are deduplicated per key (single-flight): N
//!   threads missing on the same key run the algorithm exactly once;
//! * [`SummaryServer`] fronts the service over TCP — line-delimited JSON
//!   with request pipelining, a bounded worker queue that sheds load with
//!   structured `overloaded` errors, per-request timeouts, a connection
//!   cap, and graceful shutdown (standard library only, no async
//!   runtime).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use schema_summary_core::{SchemaGraphBuilder, SchemaType, SchemaStats};
//! use schema_summary_algo::Algorithm;
//! use schema_summary_service::SummaryService;
//!
//! let mut b = SchemaGraphBuilder::new("db");
//! let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
//! let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
//! b.add_child(person, "name", SchemaType::simple_str()).unwrap();
//! let graph = Arc::new(b.build().unwrap());
//! let stats = Arc::new(SchemaStats::uniform(&graph));
//!
//! let service = SummaryService::default();
//! let fp = service.register(graph, stats);
//! let cold = service.summarize(fp, Algorithm::Balance, 1).unwrap();
//! let warm = service.summarize(fp, Algorithm::Balance, 1).unwrap();
//! assert!(!cold.from_cache && warm.from_cache);
//! assert_eq!(cold.result.selection, warm.result.selection);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod cluster;
mod disk;
pub mod export;
pub mod http;
mod listener;
mod lru;
mod pool;
pub mod server;
pub mod service;
mod store;

pub use catalog::{Artifacts, CatalogEntry, SchemaCatalog};
pub use cluster::{ClusterRouter, ProbeConfig, RendezvousRing, RouterConfig, RouterStats};
pub use export::{ExportElement, SummaryExport};
pub use http::{HttpConfig, HttpServer, HttpServerStats};
pub use server::{ServerConfig, ServerReply, ServerStats, SummaryServer, WireError};
pub use service::{
    CacheEntryInfo, CacheStats, CatalogStats, ExpandResult, ExpandSpec, GroupView, LevelView,
    MultiLevelArtifact, MultiLevelResult, ServedExpansion, ServedMultiLevel, ServedReply,
    ServedSummary, ServiceConfig, ServiceError, SummaryRequest, SummaryResult, SummaryService,
};
