//! The concurrent summary service: catalog + memoized artifacts + sharded
//! LRU result cache + delta-driven invalidation.

use crate::catalog::SchemaCatalog;
use crate::lru::ShardedLru;
use schema_summary_algo::algorithms::{balance_summary, max_coverage, max_importance};
use schema_summary_algo::assignment::{assign_elements, summary_coverage, summary_importance};
use schema_summary_algo::{Algorithm, SummarizerConfig};
use schema_summary_core::diff::SchemaDelta;
use schema_summary_core::{ElementId, SchemaError, SchemaFingerprint, SchemaGraph, SchemaStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total result-cache capacity (entries across all shards).
    pub cache_capacity: usize,
    /// Number of independent LRU shards (locks).
    pub cache_shards: usize,
    /// Default algorithm configuration used when a request does not
    /// override it.
    pub summarizer: SummarizerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            summarizer: SummarizerConfig::default(),
        }
    }
}

/// A summarize request as carried by the JSONL batch driver. All fields
/// are optional; [`SummaryService::handle`] fills in defaults (the sole
/// registered schema, the `balance` algorithm, `k = 5`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SummaryRequest {
    /// Name of a registered schema (defaults to the only one registered).
    pub schema: Option<String>,
    /// Algorithm name: `balance`, `importance`, or `coverage`.
    pub algorithm: Option<String>,
    /// Summary size.
    pub k: Option<usize>,
}

/// A computed (and cacheable) summary answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryResult {
    /// Fingerprint of the annotated schema that was summarized.
    pub fingerprint: SchemaFingerprint,
    /// Algorithm that produced the selection.
    pub algorithm: Algorithm,
    /// Requested summary size.
    pub k: usize,
    /// Selected elements, in algorithm order.
    pub selection: Vec<ElementId>,
    /// Root label paths of the selected elements, in the same order.
    pub labels: Vec<String>,
    /// Summary importance `R_SS` (Definition 3).
    pub importance: f64,
    /// Summary coverage `C_SS` (Definition 4).
    pub coverage: f64,
}

/// A service answer: the (shared) result plus whether it came from the
/// cache.
#[derive(Debug, Clone)]
pub struct ServedSummary {
    /// The summary, shared with the cache.
    pub result: Arc<SummaryResult>,
    /// `true` if the result was served from the LRU cache without running
    /// any algorithm.
    pub from_cache: bool,
}

/// Why a request could not be answered.
#[derive(Debug)]
pub enum ServiceError {
    /// The request named a schema that is not registered.
    UnknownSchema(String),
    /// The request carried a fingerprint that is not in the catalog.
    UnknownFingerprint(SchemaFingerprint),
    /// The request was ambiguous or malformed (e.g. no schema named while
    /// several are registered).
    BadRequest(String),
    /// The selection algorithm rejected the request.
    Algo(SchemaError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSchema(name) => write!(f, "unknown schema '{name}'"),
            ServiceError::UnknownFingerprint(fp) => write!(f, "unknown fingerprint {fp}"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Algo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SchemaError> for ServiceError {
    fn from(e: SchemaError) -> Self {
        ServiceError::Algo(e)
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered without running an algorithm: result-cache hits
    /// plus single-flight followers served by a concurrent leader.
    pub hits: u64,
    /// Requests that ran an algorithm. Single-flight guarantees at most
    /// one miss per distinct in-flight key, however many threads race.
    pub misses: u64,
    /// Entries displaced by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Results currently cached.
    pub entries: usize,
    /// Schemas currently registered.
    pub schemas: usize,
    /// Cumulative wall time (µs) spent computing cold results — each cache
    /// entry is admitted with its share of this as its recomputation cost.
    pub compute_micros: u64,
    /// Recomputation cost (µs) of the currently resident entries: what a
    /// cold restart would pay to rebuild the cache.
    pub cached_compute_micros: u64,
    /// Recomputation cost (µs) displaced by capacity eviction — the loss
    /// the cost-weighted victim selection works to minimize.
    pub evicted_compute_micros: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was requested yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: SchemaFingerprint,
    algorithm: Algorithm,
    k: usize,
    /// The summarizer configuration itself (`SummarizerConfig` is
    /// `Hash + Eq` with bit-stable float comparison), so the key survives
    /// float-formatting and field-order changes and costs no allocation
    /// beyond the clone.
    options: SummarizerConfig,
}

/// One in-flight cold computation (single-flight): the first thread to
/// miss on a key becomes the leader and computes; followers block here
/// until the leader publishes, then serve the shared result without ever
/// running the algorithm themselves.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    /// `Some` carries the leader's answer; `None` means the leader failed
    /// (or panicked) and followers must compute for themselves.
    Done(Option<Arc<SummaryResult>>),
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<Arc<SummaryResult>> {
        let guard = self.state.lock().expect("flight poisoned");
        let guard = self
            .cv
            .wait_while(guard, |s| matches!(s, FlightState::Pending))
            .expect("flight poisoned");
        match &*guard {
            FlightState::Done(result) => result.clone(),
            FlightState::Pending => unreachable!("wait_while admits only Done"),
        }
    }
}

/// Publishes the leader's outcome on drop — including during a panic
/// unwind — so followers are never stranded on a vanished leader. The
/// in-flight entry is removed *after* the cache insert (done by the
/// computation itself), so late arrivals find the cached result.
struct FlightPublisher<'a> {
    service: &'a SummaryService,
    key: CacheKey,
    flight: Arc<Flight>,
    result: Option<Arc<SummaryResult>>,
}

impl Drop for FlightPublisher<'_> {
    fn drop(&mut self) {
        self.service
            .in_flight
            .lock()
            .expect("in-flight map poisoned")
            .remove(&self.key);
        *self.flight.state.lock().expect("flight poisoned") = FlightState::Done(self.result.take());
        self.flight.cv.notify_all();
    }
}

/// A thread-safe, embeddable summary-serving layer.
///
/// All methods take `&self`; one `SummaryService` (typically inside an
/// `Arc`) serves any number of threads. Heavy intermediates are computed
/// once per `(schema fingerprint, configuration)` and full answers once
/// per `(fingerprint, algorithm, k, configuration)`.
pub struct SummaryService {
    config: ServiceConfig,
    catalog: SchemaCatalog,
    names: RwLock<HashMap<String, SchemaFingerprint>>,
    cache: ShardedLru<CacheKey, Arc<SummaryResult>>,
    /// Cold computations currently running, for cache-miss single-flight.
    in_flight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    compute_micros: AtomicU64,
    evicted_compute_micros: AtomicU64,
}

impl Default for SummaryService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl SummaryService {
    /// Create a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = ShardedLru::new(config.cache_capacity, config.cache_shards);
        SummaryService {
            config,
            catalog: SchemaCatalog::new(),
            names: RwLock::new(HashMap::new()),
            cache,
            in_flight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            compute_micros: AtomicU64::new(0),
            evicted_compute_micros: AtomicU64::new(0),
        }
    }

    /// The catalog backing this service.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    /// Register an annotated schema; returns its content fingerprint.
    /// Content-identical registrations are deduplicated.
    pub fn register(&self, graph: Arc<SchemaGraph>, stats: Arc<SchemaStats>) -> SchemaFingerprint {
        self.catalog.register(graph, stats).0
    }

    /// Register an annotated schema under a name for use in requests.
    /// Re-registering a name points it at the new content (the old content
    /// stays registered until invalidated).
    pub fn register_named(
        &self,
        name: impl Into<String>,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> SchemaFingerprint {
        let fp = self.register(graph, stats);
        self.names
            .write()
            .expect("names poisoned")
            .insert(name.into(), fp);
        fp
    }

    /// Resolve a registered name to its fingerprint.
    pub fn fingerprint_of(&self, name: &str) -> Option<SchemaFingerprint> {
        self.names
            .read()
            .expect("names poisoned")
            .get(name)
            .copied()
    }

    /// Answer a summarize request against a registered fingerprint, using
    /// the service's default algorithm configuration.
    pub fn summarize(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
    ) -> Result<ServedSummary, ServiceError> {
        let config = self.config.summarizer.clone();
        self.summarize_with(fingerprint, algorithm, k, &config)
    }

    /// Answer a summarize request with an explicit algorithm
    /// configuration; results are cached per configuration.
    ///
    /// Cold computations are deduplicated per key (single-flight): when N
    /// threads miss on the same key concurrently, exactly one runs the
    /// algorithm; the others block until it publishes and are counted as
    /// hits (they were served without computing).
    pub fn summarize_with(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
        config: &SummarizerConfig,
    ) -> Result<ServedSummary, ServiceError> {
        let key = CacheKey {
            fingerprint,
            algorithm,
            k,
            options: config.clone(),
        };
        loop {
            if let Some(result) = self.cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(ServedSummary {
                    result,
                    from_cache: true,
                });
            }
            let (flight, leader) = {
                let mut in_flight = self.in_flight.lock().expect("in-flight map poisoned");
                match in_flight.get(&key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        let flight = Arc::new(Flight::new());
                        in_flight.insert(key.clone(), Arc::clone(&flight));
                        (Arc::clone(&flight), true)
                    }
                }
            };
            if leader {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut publisher = FlightPublisher {
                    service: self,
                    key: key.clone(),
                    flight,
                    result: None,
                };
                let served = self.compute_and_cache(&key)?;
                publisher.result = Some(Arc::clone(&served.result));
                return Ok(served);
            }
            match flight.wait() {
                Some(result) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(ServedSummary {
                        result,
                        from_cache: true,
                    });
                }
                // The leader failed; retry from the top (most likely
                // becoming the new leader and reporting the same error).
                None => continue,
            }
        }
    }

    /// Run the selection algorithm for `key` and insert the answer into
    /// the result cache, recording the computation's wall time as the
    /// entry's recomputation cost. Only ever called by a single-flight
    /// leader.
    fn compute_and_cache(&self, key: &CacheKey) -> Result<ServedSummary, ServiceError> {
        let started = Instant::now();
        let CacheKey {
            fingerprint,
            algorithm,
            k,
            options: config,
        } = key;
        let (fingerprint, algorithm, k) = (*fingerprint, *algorithm, *k);
        let entry = self
            .catalog
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let graph = entry.graph();
        let stats = entry.stats();
        let artifacts = entry.artifacts(config);
        let selection = match algorithm {
            Algorithm::MaxImportance => max_importance(graph, artifacts.importance(), k)?,
            Algorithm::MaxCoverage => max_coverage(
                graph,
                stats,
                artifacts.matrices(),
                artifacts.dominance(),
                k,
                config.search,
            )?,
            Algorithm::Balance => {
                balance_summary(graph, artifacts.importance(), artifacts.dominance(), k)?
            }
        };
        let matrices = artifacts.matrices();
        let assignment = assign_elements(graph, matrices, &selection);
        let importance = summary_importance(graph, artifacts.importance(), &selection);
        let coverage = summary_coverage(graph, stats, matrices, &selection, &assignment);
        let labels = selection.iter().map(|&e| graph.label_path(e)).collect();
        let result = Arc::new(SummaryResult {
            fingerprint,
            algorithm,
            k,
            selection,
            labels,
            importance,
            coverage,
        });
        // Floored at 1µs so even trivially fast entries carry a nonzero
        // cost (a zero would make them permanent eviction victims for the
        // wrong reason: "free", not "cheap").
        let cost = (started.elapsed().as_micros() as u64).max(1);
        self.compute_micros.fetch_add(cost, Ordering::Relaxed);
        if let Some((_, _, evicted_cost)) =
            self.cache.insert(key.clone(), Arc::clone(&result), cost)
        {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_compute_micros
                .fetch_add(evicted_cost, Ordering::Relaxed);
        }
        Ok(ServedSummary {
            result,
            from_cache: false,
        })
    }

    /// Answer a [`SummaryRequest`] from the JSONL driver: resolves the
    /// schema name (defaulting to the sole registered schema), parses the
    /// algorithm name, and applies `k = 5` when unspecified.
    pub fn handle(&self, request: &SummaryRequest) -> Result<ServedSummary, ServiceError> {
        let fingerprint = match &request.schema {
            Some(name) => self
                .fingerprint_of(name)
                .ok_or_else(|| ServiceError::UnknownSchema(name.clone()))?,
            None => {
                let names = self.names.read().expect("names poisoned");
                match names.len() {
                    0 => return Err(ServiceError::BadRequest("no schema registered".into())),
                    1 => *names.values().next().expect("len checked"),
                    n => {
                        return Err(ServiceError::BadRequest(format!(
                            "request names no schema but {n} are registered"
                        )))
                    }
                }
            }
        };
        let algorithm = match request.algorithm.as_deref() {
            None => Algorithm::Balance,
            Some(name) => name.parse().map_err(ServiceError::BadRequest)?,
        };
        self.summarize(fingerprint, algorithm, request.k.unwrap_or(5))
    }

    /// Evict one fingerprint: its catalog entry (with all memoized
    /// artifacts) and every cached result computed from it. Returns the
    /// number of cached results dropped.
    pub fn invalidate(&self, fingerprint: SchemaFingerprint) -> usize {
        self.catalog.remove(fingerprint);
        let dropped = self.cache.retain(|key| key.fingerprint != fingerprint);
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Invalidation hook for schema deltas (`schema_summary_core::diff`):
    /// a non-empty delta evicts exactly the old fingerprint; an empty one
    /// (content unchanged) evicts nothing. Returns the number of cached
    /// results dropped.
    pub fn apply_delta(&self, delta: &SchemaDelta) -> usize {
        if delta.is_empty() {
            0
        } else {
            self.invalidate(delta.old_fingerprint)
        }
    }

    /// Re-register a named schema with fresh content: computes the
    /// [`SchemaDelta`] against the currently registered content, applies
    /// it (evicting the stale fingerprint if anything changed), registers
    /// the new content under the name, and returns the delta.
    pub fn update_named(
        &self,
        name: &str,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> Result<SchemaDelta, ServiceError> {
        let old_fp = self
            .fingerprint_of(name)
            .ok_or_else(|| ServiceError::UnknownSchema(name.to_string()))?;
        let old = self
            .catalog
            .get(old_fp)
            .ok_or(ServiceError::UnknownFingerprint(old_fp))?;
        let delta = SchemaDelta::compute(old.graph(), old.stats(), &graph, &stats);
        self.apply_delta(&delta);
        self.register_named(name, graph, stats);
        Ok(delta)
    }

    /// Current cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.cache.len(),
            schemas: self.catalog.len(),
            compute_micros: self.compute_micros.load(Ordering::Relaxed),
            cached_compute_micros: self.cache.total_cost(),
            evicted_compute_micros: self.evicted_compute_micros.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn fixture() -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![1u64; g.len()];
        for (label, c) in [
            ("person", 200u64),
            ("name", 200),
            ("auction", 100),
            ("bidder", 600),
        ] {
            cards[find(label).index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 200,
            },
            LinkCount {
                from: g.root(),
                to: find("auctions"),
                count: 1,
            },
            LinkCount {
                from: find("auctions"),
                to: find("auction"),
                count: 100,
            },
            LinkCount {
                from: find("auction"),
                to: find("bidder"),
                count: 600,
            },
            LinkCount {
                from: find("bidder"),
                to: find("person"),
                count: 600,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (Arc::new(g), Arc::new(s))
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(g, s);
        let first = service.summarize(fp, Algorithm::Balance, 2).unwrap();
        assert!(!first.from_cache);
        let second = service.summarize(fp, Algorithm::Balance, 2).unwrap();
        assert!(second.from_cache);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn results_match_the_summarizer_facade() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(Arc::clone(&g), Arc::clone(&s));
        for algorithm in [
            Algorithm::MaxImportance,
            Algorithm::MaxCoverage,
            Algorithm::Balance,
        ] {
            for k in [1, 2, 3] {
                let served = service.summarize(fp, algorithm, k).unwrap();
                let mut facade = schema_summary_algo::Summarizer::new(&g, &s);
                let expected = facade.select(k, algorithm).unwrap();
                assert_eq!(served.result.selection, expected, "{algorithm:?} k={k}");
                assert_eq!(served.result.labels.len(), k);
            }
        }
    }

    #[test]
    fn named_requests_and_defaults() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        service.register_named("site", g, s);
        let served = service.handle(&SummaryRequest::default()).unwrap();
        assert_eq!(served.result.k, 5);
        assert_eq!(served.result.algorithm, Algorithm::Balance);
        let named = service
            .handle(&SummaryRequest {
                schema: Some("site".into()),
                algorithm: Some("importance".into()),
                k: Some(2),
            })
            .unwrap();
        assert_eq!(named.result.algorithm, Algorithm::MaxImportance);
        assert!(matches!(
            service.handle(&SummaryRequest {
                schema: Some("nope".into()),
                ..Default::default()
            }),
            Err(ServiceError::UnknownSchema(_))
        ));
        assert!(matches!(
            service.handle(&SummaryRequest {
                algorithm: Some("bogus".into()),
                ..Default::default()
            }),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn invalidation_evicts_exactly_the_stale_fingerprint() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp_old = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp_old, Algorithm::Balance, 2).unwrap();
        service
            .summarize(fp_old, Algorithm::MaxImportance, 2)
            .unwrap();

        // Same structure, doubled cardinalities: a genuine delta.
        let s2 = Arc::new(s.scaled(2.0));
        let delta = service
            .update_named("site", Arc::clone(&g), Arc::clone(&s2))
            .unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.old_fingerprint, fp_old);

        // Old results are gone; the old fingerprint no longer resolves.
        assert_eq!(service.cache_stats().entries, 0);
        assert!(matches!(
            service.summarize(fp_old, Algorithm::Balance, 2),
            Err(ServiceError::UnknownFingerprint(_))
        ));
        // The name now serves the new content.
        let served = service.handle(&SummaryRequest::default()).unwrap();
        assert_eq!(served.result.fingerprint, delta.new_fingerprint);
        assert_eq!(service.cache_stats().invalidations, 2);
    }

    #[test]
    fn no_op_update_keeps_cache_warm() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp, Algorithm::Balance, 2).unwrap();
        // Re-registering identical content produces an empty delta and
        // must not evict anything.
        let delta = service.update_named("site", g, s).unwrap();
        assert!(delta.is_empty());
        assert_eq!(service.cache_stats().entries, 1);
        assert!(
            service
                .summarize(fp, Algorithm::Balance, 2)
                .unwrap()
                .from_cache
        );
    }

    #[test]
    fn capacity_pressure_counts_evictions() {
        let service = SummaryService::new(ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            summarizer: SummarizerConfig::default(),
        });
        let (g, s) = fixture();
        let fp = service.register(g, s);
        for k in 1..=4 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn compute_cost_is_conserved_across_eviction() {
        let service = SummaryService::new(ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            summarizer: SummarizerConfig::default(),
        });
        let (g, s) = fixture();
        let fp = service.register(g, s);
        for k in 1..=2 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert!(stats.compute_micros >= 2, "every entry costs at least 1µs");
        assert_eq!(stats.cached_compute_micros, stats.compute_micros);
        assert_eq!(stats.evicted_compute_micros, 0);
        // Overflowing capacity moves cost from resident to evicted; the
        // two buckets always partition the total.
        for k in 3..=4 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(
            stats.cached_compute_micros + stats.evicted_compute_micros,
            stats.compute_micros
        );
        assert!(stats.evicted_compute_micros >= 2);
        assert!(stats.cached_compute_micros >= 2);
    }
}
