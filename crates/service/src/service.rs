//! The concurrent summary service: a tiered artifact store (sharded
//! catalog + memoized artifacts + sharded LRU results + optional disk
//! spill) behind flat, multi-level, and drill-down requests, with
//! delta-driven invalidation.

use crate::catalog::SchemaCatalog;
use crate::cluster::journal::{CatalogJournal, JournalEntry};
use crate::disk::DiskTier;
use crate::export::{ExportElement, SummaryExport};
use crate::store::{ArtifactStore, CachedArtifact, RefreshOutcome, ResultKey, ResultShape};
use schema_summary_algo::algorithms::{balance_summary, max_coverage, max_importance};
use schema_summary_algo::assignment::{assign_elements, summary_coverage, summary_importance};
use schema_summary_algo::multilevel::{build_multi_level, refresh_multi_level, MultiLevelSummary};
use schema_summary_algo::{Algorithm, SummarizerConfig};
use schema_summary_core::diff::SchemaDelta;
use schema_summary_core::{
    AbstractId, ElementId, SchemaError, SchemaFingerprint, SchemaGraph, SchemaStats,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total result-cache capacity (entries across all shards).
    pub cache_capacity: usize,
    /// Number of independent LRU shards (locks).
    pub cache_shards: usize,
    /// Number of independent schema-catalog shards (locks).
    pub catalog_shards: usize,
    /// Directory for the persistent artifact tier. When set, computed
    /// matrices and results are spilled there and rehydrated on restart;
    /// when `None` the store is memory-only.
    pub store_dir: Option<PathBuf>,
    /// Byte quota for the persistent tier. When set, spilling past it
    /// evicts the oldest artifacts first; `None` grows without bound.
    /// Ignored when `store_dir` is `None`.
    pub store_max_bytes: Option<u64>,
    /// Largest schema-delta footprint served warm, as a fraction of the
    /// schema's elements: a delta whose recompute set exceeds this falls
    /// back to a cold invalidate-and-recompute (past that point the
    /// splice saves little over the parallel cold path). Values outside
    /// `(0, 1]` disable the guard.
    pub delta_max_fraction: f64,
    /// Default algorithm configuration used when a request does not
    /// override it.
    pub summarizer: SummarizerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            catalog_shards: crate::catalog::DEFAULT_CATALOG_SHARDS,
            store_dir: None,
            store_max_bytes: None,
            delta_max_fraction: 0.25,
            summarizer: SummarizerConfig::default(),
        }
    }
}

/// One drill-down step in a [`SummaryRequest`]: expand group `group` of
/// level `level` of the multi-level summary named by the request's
/// `levels`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpandSpec {
    /// Which level the expanded group lives in (0 = finest).
    pub level: usize,
    /// Group index within that level.
    pub group: usize,
}

/// A request as carried by the JSONL batch driver and the TCP server. All
/// fields are optional; the service fills in defaults (the sole
/// registered schema, the `balance` algorithm, `k = 5`). `levels` asks
/// for a multi-level summary; `expand` (which requires `levels`) drills
/// one group of it down a level.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SummaryRequest {
    /// Name of a registered schema (defaults to the only one registered).
    pub schema: Option<String>,
    /// Algorithm name: `balance`, `importance`, or `coverage`.
    pub algorithm: Option<String>,
    /// Summary size (flat requests).
    pub k: Option<usize>,
    /// Multi-level summary sizes, finest first, strictly decreasing
    /// (e.g. `[12, 6, 3]`).
    pub levels: Option<Vec<usize>>,
    /// Drill one group of the `levels` stack down a level.
    pub expand: Option<ExpandSpec>,
}

/// A computed (and cacheable) summary answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryResult {
    /// Fingerprint of the annotated schema that was summarized.
    pub fingerprint: SchemaFingerprint,
    /// Algorithm that produced the selection.
    pub algorithm: Algorithm,
    /// Requested summary size.
    pub k: usize,
    /// Selected elements, in algorithm order.
    pub selection: Vec<ElementId>,
    /// Root label paths of the selected elements, in the same order.
    pub labels: Vec<String>,
    /// Summary importance `R_SS` (Definition 3).
    pub importance: f64,
    /// Summary coverage `C_SS` (Definition 4).
    pub coverage: f64,
}

/// One abstract element of one level, as put on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupView {
    /// Group index within its level.
    pub group: usize,
    /// Root label path of the group's representative element.
    pub representative: String,
    /// Number of schema elements the group contains.
    pub size: usize,
}

/// One level of a multi-level summary, as put on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelView {
    /// Number of groups in this level.
    pub size: usize,
    /// The level's groups, in group order.
    pub groups: Vec<GroupView>,
}

/// The wire answer to a `multilevel` request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiLevelResult {
    /// Fingerprint of the annotated schema that was summarized.
    pub fingerprint: SchemaFingerprint,
    /// Algorithm that selected the finest level.
    pub algorithm: Algorithm,
    /// Level sizes, finest first.
    pub sizes: Vec<usize>,
    /// The levels, finest first.
    pub levels: Vec<LevelView>,
}

/// The wire answer to an `expand` request: one group opened one level
/// down.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpandResult {
    /// Fingerprint of the annotated schema that was summarized.
    pub fingerprint: SchemaFingerprint,
    /// Algorithm that selected the finest level.
    pub algorithm: Algorithm,
    /// Level sizes of the underlying stack, finest first.
    pub sizes: Vec<usize>,
    /// The expanded group's level (0 = finest).
    pub level: usize,
    /// The expanded group's index within its level.
    pub group: usize,
    /// Root label path of the expanded group's representative.
    pub representative: String,
    /// The finer-level groups inside the expanded group (empty when
    /// `level` is 0 — there is no finer level of groups).
    pub children: Vec<GroupView>,
    /// The schema elements inside the expanded group (only populated when
    /// `level` is 0, where drilling down reveals raw elements).
    pub elements: Vec<String>,
}

/// A cached multi-level summary: the full level stack (for drill-down)
/// plus its precomputed wire view. Built once per
/// `(fingerprint, algorithm, sizes, options)` and shared via `Arc`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLevelArtifact {
    /// The nested level stack, finest first.
    pub summary: MultiLevelSummary,
    /// The wire view served for `multilevel` requests.
    pub view: MultiLevelResult,
}

/// A service answer: the (shared) result plus whether it came from the
/// cache.
#[derive(Debug, Clone)]
pub struct ServedSummary {
    /// The summary, shared with the cache.
    pub result: Arc<SummaryResult>,
    /// `true` if the result was served from a cache tier without running
    /// any algorithm.
    pub from_cache: bool,
}

/// A served multi-level summary (the whole stack plus its wire view).
#[derive(Debug, Clone)]
pub struct ServedMultiLevel {
    /// The artifact, shared with the cache.
    pub result: Arc<MultiLevelArtifact>,
    /// `true` if the stack was served from a cache tier without running
    /// any algorithm.
    pub from_cache: bool,
}

/// A served drill-down expansion.
#[derive(Debug, Clone)]
pub struct ServedExpansion {
    /// The expansion (small: built by walking the cached level stack).
    pub result: ExpandResult,
    /// `true` if the underlying stack came from a cache tier — a warm
    /// expand never touches the matrices.
    pub from_cache: bool,
}

/// Any service answer, for callers (the TCP server, the batch driver)
/// that route whole [`SummaryRequest`]s.
#[derive(Debug, Clone)]
pub enum ServedReply {
    /// A flat summary.
    Flat(ServedSummary),
    /// A multi-level summary.
    MultiLevel(ServedMultiLevel),
    /// A drill-down expansion.
    Expansion(ServedExpansion),
}

/// Why a request could not be answered.
#[derive(Debug)]
pub enum ServiceError {
    /// The request named a schema that is not registered.
    UnknownSchema(String),
    /// The request carried a fingerprint that is not in the catalog.
    UnknownFingerprint(SchemaFingerprint),
    /// The request was ambiguous or malformed (e.g. no schema named while
    /// several are registered).
    BadRequest(String),
    /// The selection algorithm rejected the request.
    Algo(SchemaError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSchema(name) => write!(f, "unknown schema '{name}'"),
            ServiceError::UnknownFingerprint(fp) => write!(f, "unknown fingerprint {fp}"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Algo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SchemaError> for ServiceError {
    fn from(e: SchemaError) -> Self {
        ServiceError::Algo(e)
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from memory without running an algorithm:
    /// result-cache hits plus single-flight followers served by a
    /// concurrent leader.
    pub hits: u64,
    /// Requests that ran an algorithm. Single-flight guarantees at most
    /// one miss per distinct in-flight key, however many threads race.
    pub misses: u64,
    /// Requests answered by rehydrating a spilled result from the disk
    /// tier (counted in neither `hits` nor `misses`).
    pub disk_hits: u64,
    /// Entries displaced by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Results currently cached in memory.
    pub entries: usize,
    /// Schemas currently registered.
    pub schemas: usize,
    /// Cumulative wall time (µs) spent computing cold results — each cache
    /// entry is admitted with its share of this as its recomputation cost.
    pub compute_micros: u64,
    /// Recomputation cost (µs) of the currently resident entries: what a
    /// cold restart without a disk tier would pay to rebuild the cache.
    pub cached_compute_micros: u64,
    /// Recomputation cost (µs) displaced by capacity eviction — the loss
    /// the cost-weighted victim selection works to minimize.
    pub evicted_compute_micros: u64,
    /// All-pairs matrix computations actually run.
    pub matrices_computed: u64,
    /// All-pairs matrix computations avoided by rehydrating spilled bytes.
    pub matrices_rehydrated: u64,
    /// Artifact files spilled to the disk tier.
    pub disk_writes: u64,
    /// Disk-tier files discarded as corrupt (and recomputed).
    pub disk_corrupt: u64,
    /// Bytes currently spilled under the store directory.
    pub disk_bytes: u64,
    /// Spilled artifacts evicted to keep the store under its byte quota.
    pub quota_evictions: u64,
    /// Cached results dropped through the admin evict API (counted in
    /// neither `evictions` nor `invalidations`).
    pub admin_evictions: u64,
    /// Schema deltas served warm: the new fingerprint's matrices were
    /// spliced from the old fingerprint's instead of recomputed.
    pub delta_refreshes: u64,
    /// Matrix rows re-explored by warm delta refreshes (the rest of each
    /// spliced matrix was copied bit-exactly from the old fingerprint).
    pub delta_rows_recomputed: u64,
    /// Schema deltas that were routed to the refresh path but fell back
    /// to a cold invalidation (destructive change, oversized footprint,
    /// unregistered fingerprint, or nothing spliceable).
    pub delta_fallback_cold: u64,
    /// Warm refreshes whose delta was a pure rescale (same graph, every
    /// exploration lane bit-identical): coverage rewritten in place, no
    /// rows re-explored.
    pub delta_refreshes_rescale: u64,
    /// Warm refreshes whose delta touched edge weights (same graph,
    /// some RC lanes moved): the affected rows were re-explored and
    /// spliced into the carried matrices.
    pub delta_refreshes_splice: u64,
    /// Warm refreshes whose delta was additive structural growth (new
    /// elements and/or new value links): the matrices were resized
    /// in place, appended rows explored fresh.
    pub delta_refreshes_structural: u64,
    /// Named registrations rehydrated from the catalog journal at
    /// startup (0 when the service has no store directory or the journal
    /// was empty).
    pub catalog_rehydrated: u64,
    /// Importance fixpoints restarted from a previous version's vector by
    /// the warm delta path instead of computed from the cold cardinality
    /// init (ε-close, mass-conserving — DESIGN.md §3.19).
    pub importance_seeded: u64,
    /// Cumulative fixpoint iterations the seeded restarts stopped short
    /// of their chain's cold baseline (the iteration count of the
    /// original cold run, carried forward across versions).
    pub importance_iterations_saved: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was requested yet.
    /// Disk hits are excluded on both sides: the rate measures the
    /// memory tier.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident result-cache entry, as reported by the admin plane
/// ([`SummaryService::cached_entries`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheEntryInfo {
    /// Fingerprint (hex) of the schema the result was computed from.
    pub fingerprint: String,
    /// Human-readable result shape, e.g. `flat/balance/k=5` or
    /// `multilevel/balance/12,6,3`.
    pub shape: String,
    /// Recomputation cost (µs) the entry was admitted with.
    pub cost_micros: u64,
}

/// Per-shard occupancy of the sharded tiers, for contention
/// investigations ([`SummaryService::catalog_stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogStats {
    /// Schemas currently registered (sum of `catalog_shard_entries`).
    pub schemas: usize,
    /// Registered schemas per catalog shard, in shard order.
    pub catalog_shard_entries: Vec<usize>,
    /// Cached results per LRU shard, in shard order.
    pub result_shard_entries: Vec<usize>,
}

/// A thread-safe, embeddable summary-serving layer.
///
/// All methods take `&self`; one `SummaryService` (typically inside an
/// `Arc`) serves any number of threads. Heavy intermediates are computed
/// once per `(schema fingerprint, configuration)` and full answers once
/// per `(fingerprint, shape, configuration)`, where a shape is a flat
/// size `k` or a multi-level size stack.
pub struct SummaryService {
    config: ServiceConfig,
    names: RwLock<HashMap<String, SchemaFingerprint>>,
    store: ArtifactStore,
    /// Append-only catalog journal (store-dir deployments only), replayed
    /// at startup so names and graphs survive restarts.
    journal: Option<CatalogJournal>,
    /// Named registrations recovered from the journal at startup.
    rehydrated: AtomicU64,
}

impl Default for SummaryService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl SummaryService {
    /// Create a service with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config.store_dir` is set but cannot be created or
    /// opened; use [`SummaryService::try_new`] to handle that error.
    pub fn new(config: ServiceConfig) -> Self {
        Self::try_new(config).expect("store directory must be creatable")
    }

    /// Create a service, propagating a failure to open the persistent
    /// store directory instead of panicking.
    pub fn try_new(config: ServiceConfig) -> std::io::Result<Self> {
        let disk = match &config.store_dir {
            Some(dir) => Some(Arc::new(DiskTier::open_with_quota(
                dir,
                config.store_max_bytes,
            )?)),
            None => None,
        };
        let store = ArtifactStore::new(
            config.cache_capacity,
            config.cache_shards,
            config.catalog_shards,
            disk,
        );
        let mut service = SummaryService {
            config,
            names: RwLock::new(HashMap::new()),
            store,
            journal: None,
            rehydrated: AtomicU64::new(0),
        };
        if let Some(dir) = service.config.store_dir.clone() {
            // Replay before installing the journal, so rehydration does
            // not re-append what it reads.
            let (entries, _damaged) = CatalogJournal::replay(&dir);
            for entry in entries {
                match entry {
                    JournalEntry::Register { name, graph, stats } => {
                        service.register_named_inner(name, Arc::new(*graph), Arc::new(*stats), false);
                        service.rehydrated.fetch_add(1, Ordering::Relaxed);
                    }
                    JournalEntry::Retire(fingerprint) => {
                        service.store.invalidate(fingerprint);
                    }
                }
            }
            service.journal = Some(CatalogJournal::open(&dir)?);
        }
        Ok(service)
    }

    /// The catalog backing this service.
    pub fn catalog(&self) -> &SchemaCatalog {
        self.store.catalog()
    }

    /// Register an annotated schema; returns its content fingerprint.
    /// Content-identical registrations are deduplicated.
    pub fn register(&self, graph: Arc<SchemaGraph>, stats: Arc<SchemaStats>) -> SchemaFingerprint {
        self.store.catalog().register(graph, stats).0
    }

    /// Register an annotated schema under a name for use in requests.
    /// Re-registering a name points it at the new content (the old content
    /// stays registered until invalidated).
    pub fn register_named(
        &self,
        name: impl Into<String>,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> SchemaFingerprint {
        self.register_named_inner(name.into(), graph, stats, true)
    }

    /// Shared body of [`SummaryService::register_named`] and journal
    /// replay: `journal: false` suppresses the append (replay must not
    /// re-write what it reads), and a name that already maps to the same
    /// content appends nothing (an embedder re-registering after a
    /// restart would otherwise grow the journal by one record per boot).
    fn register_named_inner(
        &self,
        name: String,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
        journal: bool,
    ) -> SchemaFingerprint {
        let fp = self.register(Arc::clone(&graph), Arc::clone(&stats));
        let prior = self
            .names
            .write()
            .expect("names poisoned")
            .insert(name.clone(), fp);
        if journal && prior != Some(fp) {
            if let Some(journal) = &self.journal {
                journal.append_register(&name, &graph, &stats);
            }
        }
        fp
    }

    /// Resolve a registered name to its fingerprint.
    pub fn fingerprint_of(&self, name: &str) -> Option<SchemaFingerprint> {
        self.names
            .read()
            .expect("names poisoned")
            .get(name)
            .copied()
    }

    /// Answer a summarize request against a registered fingerprint, using
    /// the service's default algorithm configuration.
    pub fn summarize(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
    ) -> Result<ServedSummary, ServiceError> {
        let config = self.config.summarizer.clone();
        self.summarize_with(fingerprint, algorithm, k, &config)
    }

    /// Answer a summarize request with an explicit algorithm
    /// configuration; results are cached per configuration.
    ///
    /// Cold computations are deduplicated per key (single-flight): when N
    /// threads miss on the same key concurrently, exactly one runs the
    /// algorithm; the others block until it publishes and are counted as
    /// hits (they were served without computing).
    pub fn summarize_with(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
        config: &SummarizerConfig,
    ) -> Result<ServedSummary, ServiceError> {
        let key = ResultKey {
            fingerprint,
            shape: ResultShape::Flat { algorithm, k },
            options: config.clone(),
        };
        let (artifact, from_cache) = self.store.serve(&key, &|| {
            self.compute_flat(fingerprint, algorithm, k, config)
                .map(CachedArtifact::Flat)
        })?;
        match artifact {
            CachedArtifact::Flat(result) => Ok(ServedSummary { result, from_cache }),
            CachedArtifact::MultiLevel(_) => {
                unreachable!("a flat key only ever stores a flat artifact")
            }
        }
    }

    /// Build (or serve from a cache tier) a multi-level summary for the
    /// given level sizes (finest first, strictly decreasing), using the
    /// service's default algorithm configuration.
    pub fn multi_level(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
    ) -> Result<ServedMultiLevel, ServiceError> {
        let config = self.config.summarizer.clone();
        self.multi_level_with(fingerprint, algorithm, sizes, &config)
    }

    /// Build (or serve from a cache tier) a multi-level summary with an
    /// explicit algorithm configuration. The whole stack is one cache
    /// entry, so every later drill-down reuses it.
    pub fn multi_level_with(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
        config: &SummarizerConfig,
    ) -> Result<ServedMultiLevel, ServiceError> {
        if sizes.is_empty() {
            return Err(ServiceError::BadRequest(
                "levels must name at least one size".into(),
            ));
        }
        let key = ResultKey {
            fingerprint,
            shape: ResultShape::MultiLevel {
                algorithm,
                sizes: sizes.to_vec(),
            },
            options: config.clone(),
        };
        let (artifact, from_cache) = self.store.serve(&key, &|| {
            self.compute_multi_level(fingerprint, algorithm, sizes, config)
                .map(CachedArtifact::MultiLevel)
        })?;
        match artifact {
            CachedArtifact::MultiLevel(result) => Ok(ServedMultiLevel { result, from_cache }),
            CachedArtifact::Flat(_) => {
                unreachable!("a multi-level key only ever stores a multi-level artifact")
            }
        }
    }

    /// Drill one group of a multi-level summary down a level, using the
    /// service's default algorithm configuration. The underlying stack is
    /// built (and cached) on first use; a warm expand only walks the
    /// cached stack — it never recomputes matrices or selections.
    pub fn expand(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
        level: usize,
        group: usize,
    ) -> Result<ServedExpansion, ServiceError> {
        let config = self.config.summarizer.clone();
        self.expand_with(fingerprint, algorithm, sizes, level, group, &config)
    }

    /// Drill-down with an explicit algorithm configuration.
    pub fn expand_with(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
        level: usize,
        group: usize,
        config: &SummarizerConfig,
    ) -> Result<ServedExpansion, ServiceError> {
        let served = self.multi_level_with(fingerprint, algorithm, sizes, config)?;
        let ml = &served.result.summary;
        if level >= ml.depth() {
            return Err(ServiceError::BadRequest(format!(
                "level {level} out of range (stack depth {})",
                ml.depth()
            )));
        }
        let level_summary = ml.level(level);
        let Some(expanded) = level_summary.abstracts().get(group) else {
            return Err(ServiceError::BadRequest(format!(
                "group {group} out of range at level {level} (size {})",
                level_summary.size()
            )));
        };
        let entry = self
            .store
            .catalog()
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let graph = entry.graph();
        let (children, elements) = if level == 0 {
            let elements = expanded
                .members
                .iter()
                .map(|&e| graph.label_path(e))
                .collect();
            (Vec::new(), elements)
        } else {
            let fine = ml.level(level - 1);
            let children = ml
                .child_groups(level - 1, AbstractId(group as u32))
                .into_iter()
                .map(|cg| {
                    let child = &fine.abstracts()[cg.index()];
                    GroupView {
                        group: cg.index(),
                        representative: graph.label_path(child.representative),
                        size: child.members.len(),
                    }
                })
                .collect();
            (children, Vec::new())
        };
        Ok(ServedExpansion {
            result: ExpandResult {
                fingerprint,
                algorithm,
                sizes: ml.sizes(),
                level,
                group,
                representative: graph.label_path(expanded.representative),
                children,
                elements,
            },
            from_cache: served.from_cache,
        })
    }

    /// Run the selection algorithm shared by flat and multi-level
    /// requests.
    fn select_elements(
        &self,
        entry: &crate::catalog::CatalogEntry,
        algorithm: Algorithm,
        k: usize,
        config: &SummarizerConfig,
    ) -> Result<Vec<ElementId>, ServiceError> {
        let graph = entry.graph();
        let stats = entry.stats();
        let artifacts = entry.artifacts(config);
        let selection = match algorithm {
            Algorithm::MaxImportance => max_importance(graph, artifacts.importance(), k)?,
            Algorithm::MaxCoverage => max_coverage(
                graph,
                stats,
                artifacts.matrices(),
                artifacts.dominance(),
                k,
                config.search,
            )?,
            Algorithm::Balance => {
                balance_summary(graph, artifacts.importance(), artifacts.dominance(), k)?
            }
        };
        Ok(selection)
    }

    /// Compute a cold flat summary (called by a single-flight leader).
    fn compute_flat(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
        config: &SummarizerConfig,
    ) -> Result<Arc<SummaryResult>, ServiceError> {
        let entry = self
            .store
            .catalog()
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let selection = self.select_elements(&entry, algorithm, k, config)?;
        let graph = entry.graph();
        let stats = entry.stats();
        let artifacts = entry.artifacts(config);
        let matrices = artifacts.matrices();
        let assignment = assign_elements(graph, matrices, &selection);
        let importance = summary_importance(graph, artifacts.importance(), &selection);
        let coverage = summary_coverage(graph, stats, matrices, &selection, &assignment);
        let labels = selection.iter().map(|&e| graph.label_path(e)).collect();
        Ok(Arc::new(SummaryResult {
            fingerprint,
            algorithm,
            k,
            selection,
            labels,
            importance,
            coverage,
        }))
    }

    /// Compute a cold multi-level stack (called by a single-flight
    /// leader): select the finest level, then derive the coarser levels
    /// from the memoized matrices.
    fn compute_multi_level(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
        config: &SummarizerConfig,
    ) -> Result<Arc<MultiLevelArtifact>, ServiceError> {
        let entry = self
            .store
            .catalog()
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let selection = self.select_elements(&entry, algorithm, sizes[0], config)?;
        let graph = entry.graph();
        let artifacts = entry.artifacts(config);
        let summary = build_multi_level(graph, artifacts.matrices(), &selection, &sizes[1..])?;
        let view = Self::view_of(graph, fingerprint, algorithm, &summary);
        Ok(Arc::new(MultiLevelArtifact { summary, view }))
    }

    /// Project a level stack onto its wire view.
    fn view_of(
        graph: &SchemaGraph,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        summary: &MultiLevelSummary,
    ) -> MultiLevelResult {
        let levels = summary
            .levels()
            .iter()
            .map(|level| LevelView {
                size: level.size(),
                groups: level
                    .abstracts()
                    .iter()
                    .enumerate()
                    .map(|(i, a)| GroupView {
                        group: i,
                        representative: graph.label_path(a.representative),
                        size: a.members.len(),
                    })
                    .collect(),
            })
            .collect();
        MultiLevelResult {
            fingerprint,
            algorithm,
            sizes: summary.sizes(),
            levels,
        }
    }

    /// Resolve a request's schema name (defaulting to the sole registered
    /// schema) and algorithm.
    fn resolve(
        &self,
        request: &SummaryRequest,
    ) -> Result<(SchemaFingerprint, Algorithm), ServiceError> {
        let fingerprint = match &request.schema {
            Some(name) => self
                .fingerprint_of(name)
                .ok_or_else(|| ServiceError::UnknownSchema(name.clone()))?,
            None => {
                let names = self.names.read().expect("names poisoned");
                match names.len() {
                    0 => return Err(ServiceError::BadRequest("no schema registered".into())),
                    1 => *names.values().next().expect("len checked"),
                    n => {
                        return Err(ServiceError::BadRequest(format!(
                            "request names no schema but {n} are registered"
                        )))
                    }
                }
            }
        };
        let algorithm = match request.algorithm.as_deref() {
            None => Algorithm::Balance,
            Some(name) => name.parse().map_err(ServiceError::BadRequest)?,
        };
        Ok((fingerprint, algorithm))
    }

    /// Answer any [`SummaryRequest`]: `expand` (requires `levels`) drills
    /// a cached stack, `levels` builds/serves a multi-level summary, and
    /// otherwise a flat summary with `k = 5` by default.
    pub fn handle_request(&self, request: &SummaryRequest) -> Result<ServedReply, ServiceError> {
        let (fingerprint, algorithm) = self.resolve(request)?;
        let config = self.config.summarizer.clone();
        match (&request.levels, &request.expand) {
            (None, Some(_)) => Err(ServiceError::BadRequest(
                "expand requires levels (the stack to drill into)".into(),
            )),
            (Some(sizes), Some(spec)) => self
                .expand_with(
                    fingerprint,
                    algorithm,
                    sizes,
                    spec.level,
                    spec.group,
                    &config,
                )
                .map(ServedReply::Expansion),
            (Some(sizes), None) => self
                .multi_level_with(fingerprint, algorithm, sizes, &config)
                .map(ServedReply::MultiLevel),
            (None, None) => self
                .summarize(fingerprint, algorithm, request.k.unwrap_or(5))
                .map(ServedReply::Flat),
        }
    }

    /// Answer a flat [`SummaryRequest`] (compatibility entry point for
    /// embedders; multi-level requests go through
    /// [`SummaryService::handle_request`]).
    pub fn handle(&self, request: &SummaryRequest) -> Result<ServedSummary, ServiceError> {
        match self.handle_request(request)? {
            ServedReply::Flat(served) => Ok(served),
            _ => Err(ServiceError::BadRequest(
                "multi-level request answered through handle(); use handle_request()".into(),
            )),
        }
    }

    /// Evict one fingerprint from every tier: its catalog entry (with all
    /// memoized artifacts), every cached result computed from it, and its
    /// spilled files. Returns the number of cached results dropped.
    pub fn invalidate(&self, fingerprint: SchemaFingerprint) -> usize {
        let dropped = self.store.invalidate(fingerprint);
        if let Some(journal) = &self.journal {
            journal.append_retire(fingerprint);
        }
        dropped
    }

    /// Maintenance hook for schema deltas (`schema_summary_core::diff`).
    ///
    /// An empty delta (content unchanged) touches nothing. A non-empty
    /// delta routes through [`ArtifactStore::refresh`]: when the new
    /// fingerprint is registered and the delta qualifies (same graph,
    /// footprint within [`ServiceConfig::delta_max_fraction`] of the
    /// elements), the new fingerprint's matrices are spliced from the old
    /// fingerprint's — bit-identical to cold recomputes — the old
    /// importance vectors are staged as ε-close fixpoint restart seeds
    /// (DESIGN.md §3.19), and the old cached results are re-derived warm
    /// under the new fingerprint. Matrices and coverage stay bit-exact;
    /// reported importance mass is ε-close, and selections agree with a
    /// cold service whenever the importance ranking is stable under that
    /// ε perturbation (scores within ε of each other may order
    /// differently). Otherwise the old fingerprint is simply
    /// invalidated, as before. Returns the number of cached results
    /// dropped either way.
    pub fn apply_delta(&self, delta: &SchemaDelta) -> usize {
        match self.store.refresh(
            delta.old_fingerprint,
            delta.new_fingerprint,
            delta,
            self.config.delta_max_fraction,
        ) {
            RefreshOutcome::Noop => 0,
            RefreshOutcome::Cold(dropped) => {
                if let Some(journal) = &self.journal {
                    journal.append_retire(delta.old_fingerprint);
                }
                dropped
            }
            RefreshOutcome::Warm { dropped, derive } => {
                if let Some(journal) = &self.journal {
                    journal.append_retire(delta.old_fingerprint);
                }
                for (old_key, old_artifact, row_changed) in derive {
                    self.derive_result(
                        &old_key,
                        delta.new_fingerprint,
                        &old_artifact,
                        &row_changed,
                    );
                }
                dropped
            }
        }
    }

    /// Rebuild one old cached result under the new fingerprint, through
    /// the normal single-flight `serve` so concurrent requests share the
    /// work. Multi-level stacks are patched from the old stack where the
    /// delta plan allows; flat summaries recompute their (cheap)
    /// selection against the seeded matrices. Failures are dropped — the
    /// result then simply computes cold on next request.
    fn derive_result(
        &self,
        old_key: &ResultKey,
        new_fp: SchemaFingerprint,
        old_artifact: &CachedArtifact,
        row_changed: &[bool],
    ) {
        let new_key = ResultKey {
            fingerprint: new_fp,
            shape: old_key.shape.clone(),
            options: old_key.options.clone(),
        };
        let _ = self
            .store
            .serve(&new_key, &|| match (&new_key.shape, old_artifact) {
                (ResultShape::Flat { algorithm, k }, _) => self
                    .compute_flat(new_fp, *algorithm, *k, &new_key.options)
                    .map(CachedArtifact::Flat),
                (
                    ResultShape::MultiLevel { algorithm, sizes },
                    CachedArtifact::MultiLevel(prev),
                ) => self
                    .refresh_multi_level_artifact(
                        new_fp,
                        *algorithm,
                        sizes,
                        &new_key.options,
                        prev,
                        row_changed,
                    )
                    .map(CachedArtifact::MultiLevel),
                (ResultShape::MultiLevel { algorithm, sizes }, CachedArtifact::Flat(_)) => self
                    .compute_multi_level(new_fp, *algorithm, sizes, &new_key.options)
                    .map(CachedArtifact::MultiLevel),
            });
    }

    /// Derive a multi-level stack for `fingerprint` by patching a cached
    /// previous stack: re-select the finest level (cheap against the
    /// seeded matrices), then let `refresh_multi_level` re-assign only
    /// the rows the delta touched — falling back to a full rebuild
    /// internally when the cached stack does not match. Bit-identical to
    /// [`SummaryService::compute_multi_level`] either way.
    fn refresh_multi_level_artifact(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        sizes: &[usize],
        config: &SummarizerConfig,
        previous: &MultiLevelArtifact,
        row_changed: &[bool],
    ) -> Result<Arc<MultiLevelArtifact>, ServiceError> {
        let entry = self
            .store
            .catalog()
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let selection = self.select_elements(&entry, algorithm, sizes[0], config)?;
        let graph = entry.graph();
        let artifacts = entry.artifacts(config);
        let (summary, _patched) = refresh_multi_level(
            graph,
            artifacts.matrices(),
            &selection,
            &sizes[1..],
            &previous.summary,
            row_changed,
        )?;
        let view = Self::view_of(graph, fingerprint, algorithm, &summary);
        Ok(Arc::new(MultiLevelArtifact { summary, view }))
    }

    /// Admin entry point (`POST /admin/refresh`): diff two registered
    /// fingerprints and route the delta through the warm refresh path,
    /// exactly as [`SummaryService::update_named`] does on re-register.
    /// Returns the delta.
    pub fn refresh_between(
        &self,
        old_fp: SchemaFingerprint,
        new_fp: SchemaFingerprint,
    ) -> Result<SchemaDelta, ServiceError> {
        let old = self
            .store
            .catalog()
            .get(old_fp)
            .ok_or(ServiceError::UnknownFingerprint(old_fp))?;
        if old_fp == new_fp {
            // A refresh of a fingerprint onto itself is a retry of an
            // already-applied update: identical content, nothing to diff.
            // Short-circuit without touching the store so no cached
            // result is purged and no delta counter moves.
            return Ok(SchemaDelta::compute(
                old.graph(),
                old.stats(),
                old.graph(),
                old.stats(),
            ));
        }
        let new = self
            .store
            .catalog()
            .get(new_fp)
            .ok_or(ServiceError::UnknownFingerprint(new_fp))?;
        let delta = SchemaDelta::compute(old.graph(), old.stats(), new.graph(), new.stats());
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Re-register a named schema with fresh content: registers the new
    /// content under the name, computes the [`SchemaDelta`] against the
    /// previously registered content, and applies it — refreshing the
    /// new fingerprint's artifacts warm from the old ones when the delta
    /// qualifies, evicting the stale fingerprint either way. Returns the
    /// delta. (The new content is registered *before* the delta is
    /// applied so the warm path has a destination to seed.)
    pub fn update_named(
        &self,
        name: &str,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> Result<SchemaDelta, ServiceError> {
        let old_fp = self
            .fingerprint_of(name)
            .ok_or_else(|| ServiceError::UnknownSchema(name.to_string()))?;
        let old = self
            .store
            .catalog()
            .get(old_fp)
            .ok_or(ServiceError::UnknownFingerprint(old_fp))?;
        let delta = SchemaDelta::compute(old.graph(), old.stats(), &graph, &stats);
        self.register_named(name, graph, stats);
        self.apply_delta(&delta);
        Ok(delta)
    }

    /// Current cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let counters = self.store.catalog().compute_counters();
        let (disk_writes, disk_corrupt, disk_bytes, quota_evictions) = match self.store.disk() {
            Some(disk) => (
                disk.writes(),
                disk.corrupt(),
                disk.bytes_on_disk(),
                disk.quota_evictions(),
            ),
            None => (0, 0, 0, 0),
        };
        CacheStats {
            hits: self.store.hits(),
            misses: self.store.misses(),
            disk_hits: self.store.disk_hits(),
            evictions: self.store.evictions(),
            invalidations: self.store.invalidations(),
            entries: self.store.entries(),
            schemas: self.store.catalog().len(),
            compute_micros: self.store.compute_micros(),
            cached_compute_micros: self.store.cached_compute_micros(),
            evicted_compute_micros: self.store.evicted_compute_micros(),
            matrices_computed: counters.matrices_computed(),
            matrices_rehydrated: counters.matrices_rehydrated(),
            disk_writes,
            disk_corrupt,
            disk_bytes,
            quota_evictions,
            admin_evictions: self.store.admin_evictions(),
            delta_refreshes: self.store.delta_refreshes(),
            delta_rows_recomputed: self.store.delta_rows_recomputed(),
            delta_fallback_cold: self.store.delta_fallback_cold(),
            delta_refreshes_rescale: self.store.delta_refreshes_rescale(),
            delta_refreshes_splice: self.store.delta_refreshes_splice(),
            delta_refreshes_structural: self.store.delta_refreshes_structural(),
            catalog_rehydrated: self.rehydrated.load(Ordering::Relaxed),
            importance_seeded: counters.importance_seeded(),
            importance_iterations_saved: counters.importance_iterations_saved(),
        }
    }

    /// Snapshot the resident result-cache entries (the admin inspection
    /// view), sorted by fingerprint then shape for deterministic output.
    pub fn cached_entries(&self) -> Vec<CacheEntryInfo> {
        let mut entries: Vec<CacheEntryInfo> = self
            .store
            .result_entries()
            .into_iter()
            .map(|(key, cost)| CacheEntryInfo {
                fingerprint: key.fingerprint.to_hex(),
                shape: match &key.shape {
                    ResultShape::Flat { algorithm, k } => format!("flat/{algorithm}/k={k}"),
                    ResultShape::MultiLevel { algorithm, sizes } => {
                        let sizes = sizes
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("multilevel/{algorithm}/{sizes}")
                    }
                },
                cost_micros: cost,
            })
            .collect();
        entries.sort();
        entries
    }

    /// Evict one fingerprint's cached *results* — the in-memory entries
    /// and the spilled flat/multi-level summaries — while keeping the
    /// schema registered and its memoized matrices. The next identical
    /// request is a cache miss that recomputes only the selection; a
    /// full teardown is [`SummaryService::invalidate`]. Returns the
    /// number of in-memory results dropped.
    pub fn evict_fingerprint(&self, fingerprint: SchemaFingerprint) -> usize {
        self.store.evict_results(fingerprint)
    }

    /// Build a condensed machine-readable export of a flat summary: the
    /// selection (served through the cache tiers like any request) joined
    /// with each element's importance score and cardinality.
    pub fn export_summary(
        &self,
        fingerprint: SchemaFingerprint,
        algorithm: Algorithm,
        k: usize,
    ) -> Result<SummaryExport, ServiceError> {
        let served = self.summarize(fingerprint, algorithm, k)?;
        let entry = self
            .store
            .catalog()
            .get(fingerprint)
            .ok_or(ServiceError::UnknownFingerprint(fingerprint))?;
        let stats = entry.stats();
        let config = self.config.summarizer.clone();
        let artifacts = entry.artifacts(&config);
        let importance = artifacts.importance();
        let elements = served
            .result
            .selection
            .iter()
            .zip(&served.result.labels)
            .map(|(&e, label)| ExportElement {
                label: label.clone(),
                importance: importance.score(e),
                cardinality: stats.card(e),
            })
            .collect();
        let schema = self
            .names
            .read()
            .expect("names poisoned")
            .iter()
            .find(|(_, &fp)| fp == fingerprint)
            .map(|(name, _)| name.clone());
        Ok(SummaryExport {
            schema,
            fingerprint: fingerprint.to_hex(),
            algorithm: algorithm.to_string(),
            k: served.result.k,
            schema_elements: stats.len(),
            importance: served.result.importance,
            coverage: served.result.coverage,
            elements,
        })
    }

    /// Per-shard occupancy of the catalog and result tiers.
    pub fn catalog_stats(&self) -> CatalogStats {
        let catalog_shard_entries = self.store.catalog().shard_lens();
        CatalogStats {
            schemas: catalog_shard_entries.iter().sum(),
            catalog_shard_entries,
            result_shard_entries: self.store.result_shard_lens(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{DeltaClass, SchemaGraphBuilder, SchemaType};

    fn fixture() -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        fixture_with_cards(200, 200)
    }

    /// Fixture with a bumpable leaf (`name`, all RCs ≤ 1: a card change is
    /// a pure coverage rescale) and a bumpable hub (`person`, whose
    /// `RC(person→bidder) = 600/card` factor is unclamped: a card change
    /// re-explores every row that reads it).
    fn fixture_with_name_card(name_card: u64) -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        fixture_with_cards(name_card, 200)
    }

    fn fixture_with_cards(
        name_card: u64,
        person_card: u64,
    ) -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![1u64; g.len()];
        for (label, c) in [
            ("person", person_card),
            ("name", name_card),
            ("auction", 100),
            ("bidder", 600),
        ] {
            cards[find(label).index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 200,
            },
            LinkCount {
                from: g.root(),
                to: find("auctions"),
                count: 1,
            },
            LinkCount {
                from: find("auctions"),
                to: find("auction"),
                count: 100,
            },
            LinkCount {
                from: find("auction"),
                to: find("bidder"),
                count: 600,
            },
            LinkCount {
                from: find("bidder"),
                to: find("person"),
                count: 600,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (Arc::new(g), Arc::new(s))
    }

    /// The base fixture grown in place: identical declarations in the
    /// same order plus an appended `wishlist` set under `person` — an
    /// additive structural delta whose identity prefix matches the base
    /// fixture, so the warm path can resize instead of falling cold.
    fn grown_fixture() -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.add_child(person, "wishlist", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![1u64; g.len()];
        for (label, c) in [
            ("person", 200),
            ("name", 200),
            ("auction", 100),
            ("bidder", 600),
            ("wishlist", 300),
        ] {
            cards[find(label).index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 200,
            },
            LinkCount {
                from: g.root(),
                to: find("auctions"),
                count: 1,
            },
            LinkCount {
                from: find("auctions"),
                to: find("auction"),
                count: 100,
            },
            LinkCount {
                from: find("auction"),
                to: find("bidder"),
                count: 600,
            },
            LinkCount {
                from: find("bidder"),
                to: find("person"),
                count: 600,
            },
            LinkCount {
                from: find("person"),
                to: find("wishlist"),
                count: 300,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (Arc::new(g), Arc::new(s))
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(g, s);
        let first = service.summarize(fp, Algorithm::Balance, 2).unwrap();
        assert!(!first.from_cache);
        let second = service.summarize(fp, Algorithm::Balance, 2).unwrap();
        assert!(second.from_cache);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn results_match_the_summarizer_facade() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(Arc::clone(&g), Arc::clone(&s));
        for algorithm in [
            Algorithm::MaxImportance,
            Algorithm::MaxCoverage,
            Algorithm::Balance,
        ] {
            for k in [1, 2, 3] {
                let served = service.summarize(fp, algorithm, k).unwrap();
                let mut facade = schema_summary_algo::Summarizer::new(&g, &s);
                let expected = facade.select(k, algorithm).unwrap();
                assert_eq!(served.result.selection, expected, "{algorithm:?} k={k}");
                assert_eq!(served.result.labels.len(), k);
            }
        }
    }

    #[test]
    fn named_requests_and_defaults() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        service.register_named("site", g, s);
        let served = service.handle(&SummaryRequest::default()).unwrap();
        assert_eq!(served.result.k, 5);
        assert_eq!(served.result.algorithm, Algorithm::Balance);
        let named = service
            .handle(&SummaryRequest {
                schema: Some("site".into()),
                algorithm: Some("importance".into()),
                k: Some(2),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(named.result.algorithm, Algorithm::MaxImportance);
        assert!(matches!(
            service.handle(&SummaryRequest {
                schema: Some("nope".into()),
                ..Default::default()
            }),
            Err(ServiceError::UnknownSchema(_))
        ));
        assert!(matches!(
            service.handle(&SummaryRequest {
                algorithm: Some("bogus".into()),
                ..Default::default()
            }),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn invalidation_evicts_exactly_the_stale_fingerprint() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp_old = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp_old, Algorithm::Balance, 2).unwrap();
        service
            .summarize(fp_old, Algorithm::MaxImportance, 2)
            .unwrap();

        // Same structure, doubled cardinalities: a genuine delta. Every RC
        // is unchanged bit-for-bit, so this rides the warm pure-rescale
        // path — which must still evict the stale fingerprint completely.
        let s2 = Arc::new(s.scaled(2.0));
        let delta = service
            .update_named("site", Arc::clone(&g), Arc::clone(&s2))
            .unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.old_fingerprint, fp_old);

        // The old fingerprint no longer resolves; its results were dropped
        // (and re-derived under the new fingerprint by the warm refresh).
        assert!(matches!(
            service.summarize(fp_old, Algorithm::Balance, 2),
            Err(ServiceError::UnknownFingerprint(_))
        ));
        assert_eq!(service.cache_stats().invalidations, 2);
        assert_eq!(service.cache_stats().delta_refreshes, 1);
        assert_eq!(service.cache_stats().entries, 2);
        // The name now serves the new content.
        let served = service.handle(&SummaryRequest::default()).unwrap();
        assert_eq!(served.result.fingerprint, delta.new_fingerprint);
    }

    #[test]
    fn no_op_update_keeps_cache_warm() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp, Algorithm::Balance, 2).unwrap();
        // Re-registering identical content produces an empty delta and
        // must not evict anything.
        let delta = service.update_named("site", g, s).unwrap();
        assert!(delta.is_empty());
        assert_eq!(service.cache_stats().entries, 1);
        assert!(
            service
                .summarize(fp, Algorithm::Balance, 2)
                .unwrap()
                .from_cache
        );
    }

    #[test]
    fn small_delta_refreshes_results_warm_within_tolerance() {
        // The tiny fixture graph is well inside any BFS horizon, so the
        // fraction guard must be open for the warm path to engage.
        let service = SummaryService::new(ServiceConfig {
            delta_max_fraction: 1.0,
            ..Default::default()
        });
        let (g, s) = fixture();
        let fp_old = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        let sizes = [4usize, 2];
        service.summarize(fp_old, Algorithm::Balance, 2).unwrap();
        service
            .multi_level(fp_old, Algorithm::Balance, &sizes)
            .unwrap();
        let computed_before = service.cache_stats().matrices_computed;
        assert_eq!(computed_before, 1);

        // Bump one leaf cardinality: a small, structure-preserving delta.
        let (g2, s2) = fixture_with_name_card(220);
        let delta = service.update_named("site", Arc::clone(&g2), s2).unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.changed_cardinalities.len(), 1);

        assert_eq!(delta.class, DeltaClass::Rescale);

        let stats = service.cache_stats();
        assert_eq!(stats.delta_refreshes, 1, "the delta must be served warm");
        assert_eq!(stats.delta_refreshes_rescale, 1);
        assert_eq!(stats.delta_refreshes_splice, 0);
        assert_eq!(stats.delta_refreshes_structural, 0);
        assert_eq!(stats.delta_fallback_cold, 0);
        // A leaf growing keeps every rc_factor clamped and every w_back
        // count ratio: no row re-explores, the splice rescales coverage.
        assert_eq!(stats.delta_rows_recomputed, 0);
        assert_eq!(
            stats.matrices_computed, computed_before,
            "the new fingerprint's matrices must be spliced, not recomputed"
        );

        // The re-derived results are already cached under the new
        // fingerprint...
        let warm_flat = service
            .summarize(delta.new_fingerprint, Algorithm::Balance, 2)
            .unwrap();
        assert!(warm_flat.from_cache);
        let warm_ml = service
            .multi_level(delta.new_fingerprint, Algorithm::Balance, &sizes)
            .unwrap();
        assert!(warm_ml.from_cache);
        // ...and no matrix computation happened along the way.
        assert_eq!(service.cache_stats().matrices_computed, computed_before);

        // The warm re-derivation forced the new fingerprint's importance
        // through the seeded restart.
        let stats = service.cache_stats();
        assert_eq!(stats.importance_seeded, 1);

        // The warm answers obey the documented tolerance contract against
        // a cold service over the same new content: selection, labels,
        // and coverage bit-identical (they come from the spliced, bit-
        // exact matrices), summary importance ε-close (the seeded restart
        // stops at a different point of the same convergence ball).
        let cold = SummaryService::default();
        let (g3, s3) = fixture_with_name_card(220);
        let fp_cold = cold.register(g3, s3);
        assert_eq!(fp_cold, delta.new_fingerprint);
        let cold_flat = cold.summarize(fp_cold, Algorithm::Balance, 2).unwrap();
        let cold_ml = cold
            .multi_level(fp_cold, Algorithm::Balance, &sizes)
            .unwrap();
        assert_eq!(warm_flat.result.selection, cold_flat.result.selection);
        assert_eq!(warm_flat.result.labels, cold_flat.result.labels);
        assert_eq!(
            warm_flat.result.coverage.to_bits(),
            cold_flat.result.coverage.to_bits()
        );
        let (warm_i, cold_i) = (warm_flat.result.importance, cold_flat.result.importance);
        assert!(
            (warm_i - cold_i).abs() <= 10.0 * 0.001 * cold_i.abs(),
            "summary importance must be ε-close: warm {warm_i} vs cold {cold_i}"
        );
        // The stack is selection + matrices only — bit-identical.
        assert_eq!(*warm_ml.result, *cold_ml.result);
    }

    #[test]
    fn oversized_delta_falls_back_cold() {
        // Default fraction (0.25): doubling person's cardinality moves its
        // unclamped RC(person→bidder) factor, every source's trace reads
        // person on this connected fixture, so the plan wants all rows —
        // the refresh must fall back to plain invalidation.
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp_old = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp_old, Algorithm::Balance, 2).unwrap();
        let (g2, s2) = fixture_with_cards(200, 400);
        let delta = service.update_named("site", g2, s2).unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.class, DeltaClass::EdgeTouch);
        let stats = service.cache_stats();
        assert_eq!(stats.delta_refreshes, 0);
        assert_eq!(stats.delta_refreshes_splice, 0, "fallbacks count in no class");
        assert_eq!(stats.delta_fallback_cold, 1);
        assert_eq!(stats.entries, 0, "cold fallback drops the old results");
    }

    #[test]
    fn structural_growth_refreshes_warm_and_counts_by_class() {
        let service = SummaryService::new(ServiceConfig {
            delta_max_fraction: 1.0,
            ..Default::default()
        });
        let (g, s) = fixture();
        let fp_old = service.register_named("site", Arc::clone(&g), Arc::clone(&s));
        service.summarize(fp_old, Algorithm::Balance, 2).unwrap();
        let computed_before = service.cache_stats().matrices_computed;
        assert_eq!(computed_before, 1);

        let (g2, s2) = grown_fixture();
        let delta = service.update_named("site", g2, s2).unwrap();
        assert_eq!(delta.class, DeltaClass::AdditiveStructural);
        assert_eq!(delta.added_elements.len(), 1);

        let stats = service.cache_stats();
        assert_eq!(stats.delta_refreshes, 1, "growth must be served warm");
        assert_eq!(stats.delta_refreshes_structural, 1);
        assert_eq!(stats.delta_refreshes_rescale, 0);
        assert_eq!(stats.delta_refreshes_splice, 0);
        assert_eq!(stats.delta_fallback_cold, 0);
        assert_eq!(
            stats.matrices_computed, computed_before,
            "the grown fingerprint's matrices must be resized and spliced, not recomputed"
        );
        assert_eq!(
            stats.importance_seeded, 1,
            "the grown fixpoint restarts from the rebased seed"
        );

        // The re-derived result is already cached under the new
        // fingerprint and bit-consistent with a cold service over the
        // same grown content (importance ε-close per the seeded-restart
        // contract).
        let warm = service
            .summarize(delta.new_fingerprint, Algorithm::Balance, 2)
            .unwrap();
        assert!(warm.from_cache);
        let cold = SummaryService::default();
        let (g3, s3) = grown_fixture();
        let fp_cold = cold.register(g3, s3);
        assert_eq!(fp_cold, delta.new_fingerprint);
        let cold_flat = cold.summarize(fp_cold, Algorithm::Balance, 2).unwrap();
        assert_eq!(warm.result.selection, cold_flat.result.selection);
        assert_eq!(warm.result.labels, cold_flat.result.labels);
        assert_eq!(
            warm.result.coverage.to_bits(),
            cold_flat.result.coverage.to_bits()
        );
        let (warm_i, cold_i) = (warm.result.importance, cold_flat.result.importance);
        assert!(
            (warm_i - cold_i).abs() <= 10.0 * 0.001 * cold_i.abs(),
            "summary importance must be ε-close: warm {warm_i} vs cold {cold_i}"
        );
    }

    #[test]
    fn self_refresh_between_short_circuits_without_purging() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register_named("site", g, s);
        service.summarize(fp, Algorithm::Balance, 2).unwrap();
        let before = service.cache_stats();

        // Refreshing a fingerprint onto itself is a retry of an already-
        // applied update: it must answer with the empty delta and leave
        // every counter and cached result untouched.
        let delta = service.refresh_between(fp, fp).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.class, DeltaClass::Rescale);
        assert_eq!(delta.old_fingerprint, fp);
        assert_eq!(delta.new_fingerprint, fp);

        let after = service.cache_stats();
        assert_eq!(after.invalidations, before.invalidations);
        assert_eq!(after.delta_refreshes, before.delta_refreshes);
        assert_eq!(after.delta_fallback_cold, before.delta_fallback_cold);
        assert_eq!(after.entries, before.entries);
        assert!(
            service
                .summarize(fp, Algorithm::Balance, 2)
                .unwrap()
                .from_cache,
            "the self-refresh must not evict the cached result"
        );

        // An unregistered fingerprint still errors, even against itself.
        let (g2, s2) = grown_fixture();
        let stranger = SchemaFingerprint::of_annotated(&g2, &s2);
        assert!(matches!(
            service.refresh_between(stranger, stranger),
            Err(ServiceError::UnknownFingerprint(_))
        ));
    }

    #[test]
    fn capacity_pressure_counts_evictions() {
        let service = SummaryService::new(ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            ..Default::default()
        });
        let (g, s) = fixture();
        let fp = service.register(g, s);
        for k in 1..=4 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn compute_cost_is_conserved_across_eviction() {
        let service = SummaryService::new(ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            ..Default::default()
        });
        let (g, s) = fixture();
        let fp = service.register(g, s);
        for k in 1..=2 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert!(stats.compute_micros >= 2, "every entry costs at least 1µs");
        assert_eq!(stats.cached_compute_micros, stats.compute_micros);
        assert_eq!(stats.evicted_compute_micros, 0);
        // Overflowing capacity moves cost from resident to evicted; the
        // two buckets always partition the total.
        for k in 3..=4 {
            service.summarize(fp, Algorithm::Balance, k).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(
            stats.cached_compute_micros + stats.evicted_compute_micros,
            stats.compute_micros
        );
        assert!(stats.evicted_compute_micros >= 2);
        assert!(stats.cached_compute_micros >= 2);
    }

    #[test]
    fn multilevel_is_cached_and_matches_direct_build() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(Arc::clone(&g), Arc::clone(&s));
        let sizes = [4usize, 2];
        let cold = service.multi_level(fp, Algorithm::Balance, &sizes).unwrap();
        assert!(!cold.from_cache);
        let warm = service.multi_level(fp, Algorithm::Balance, &sizes).unwrap();
        assert!(warm.from_cache);
        assert!(Arc::ptr_eq(&cold.result, &warm.result));

        let mut facade = schema_summary_algo::Summarizer::new(&g, &s);
        let expected = facade.multi_level(&sizes, Algorithm::Balance).unwrap();
        assert_eq!(cold.result.summary, expected);
        assert_eq!(cold.result.view.sizes, vec![4, 2]);
        assert_eq!(cold.result.view.levels.len(), 2);
        assert_eq!(cold.result.view.levels[0].groups.len(), 4);
    }

    #[test]
    fn expand_drills_one_level_and_is_warm_after_the_stack_exists() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        let fp = service.register(Arc::clone(&g), Arc::clone(&s));
        let sizes = [4usize, 2];
        // The first expand builds (and caches) the stack.
        let exp = service
            .expand(fp, Algorithm::Balance, &sizes, 1, 0)
            .unwrap();
        assert!(!exp.from_cache);
        assert!(!exp.result.children.is_empty());
        let computed_before = service.cache_stats().matrices_computed;

        // Level-1 expansion lists the level-0 child groups.
        let exp = service
            .expand(fp, Algorithm::Balance, &sizes, 1, 1)
            .unwrap();
        assert!(exp.from_cache);
        assert!(!exp.result.children.is_empty());
        assert!(exp.result.elements.is_empty());
        let total_children: usize = (0..2)
            .map(|grp| {
                service
                    .expand(fp, Algorithm::Balance, &sizes, 1, grp)
                    .unwrap()
                    .result
                    .children
                    .len()
            })
            .sum();
        assert_eq!(
            total_children, 4,
            "level-1 groups partition the 4 finer groups"
        );

        // Level-0 expansion lists raw schema elements.
        let exp = service
            .expand(fp, Algorithm::Balance, &sizes, 0, 0)
            .unwrap();
        assert!(exp.result.children.is_empty());
        assert!(!exp.result.elements.is_empty());

        // None of the warm expands recomputed matrices.
        assert_eq!(service.cache_stats().matrices_computed, computed_before);

        // Out-of-range requests are BadRequest, not panics.
        assert!(matches!(
            service.expand(fp, Algorithm::Balance, &sizes, 2, 0),
            Err(ServiceError::BadRequest(_))
        ));
        assert!(matches!(
            service.expand(fp, Algorithm::Balance, &sizes, 1, 9),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn handle_request_routes_all_three_shapes() {
        let service = SummaryService::default();
        let (g, s) = fixture();
        service.register_named("site", g, s);
        let flat = service.handle_request(&SummaryRequest::default()).unwrap();
        assert!(matches!(flat, ServedReply::Flat(_)));
        let ml = service
            .handle_request(&SummaryRequest {
                levels: Some(vec![4, 2]),
                ..Default::default()
            })
            .unwrap();
        let ServedReply::MultiLevel(ml) = ml else {
            panic!("levels must produce a multi-level reply");
        };
        assert_eq!(ml.result.view.sizes, vec![4, 2]);
        let exp = service
            .handle_request(&SummaryRequest {
                levels: Some(vec![4, 2]),
                expand: Some(ExpandSpec { level: 1, group: 0 }),
                ..Default::default()
            })
            .unwrap();
        let ServedReply::Expansion(exp) = exp else {
            panic!("expand must produce an expansion reply");
        };
        assert!(
            exp.from_cache,
            "the stack was cached by the previous request"
        );
        // expand without levels is rejected.
        assert!(matches!(
            service.handle_request(&SummaryRequest {
                expand: Some(ExpandSpec { level: 0, group: 0 }),
                ..Default::default()
            }),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn catalog_stats_expose_shard_occupancy() {
        let service = SummaryService::new(ServiceConfig {
            catalog_shards: 4,
            cache_shards: 2,
            ..Default::default()
        });
        let (g, s) = fixture();
        let fp = service.register(g, s);
        service.summarize(fp, Algorithm::Balance, 2).unwrap();
        let stats = service.catalog_stats();
        assert_eq!(stats.schemas, 1);
        assert_eq!(stats.catalog_shard_entries.len(), 4);
        assert_eq!(stats.catalog_shard_entries.iter().sum::<usize>(), 1);
        assert_eq!(stats.result_shard_entries.len(), 2);
        assert_eq!(stats.result_shard_entries.iter().sum::<usize>(), 1);
    }
}
