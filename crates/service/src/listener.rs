//! Shared TCP listener plumbing for the front-ends: the line-JSON server
//! and the HTTP server differ in framing and in how they say "go away",
//! but not in how they accept, cap, track, and drain connections. This
//! module owns that common machinery:
//!
//! * an accept loop with a connection cap — over-cap connections get a
//!   protocol-specific rejection (a JSON error line, an HTTP 503) and are
//!   closed without a thread;
//! * per-connection thread tracking with opportunistic reaping, so the
//!   handle list tracks live connections instead of growing forever;
//! * the shared stop flag that blocked reads poll ([`POLL_INTERVAL`]) and
//!   the shutdown choreography (stop accepting, poke the listener loose,
//!   join every connection).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads wake up to check for shutdown.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Accept-side bookkeeping shared by every front-end: counters, the
/// live-connection gauge, the tracked handles, and the stop flag.
pub(crate) struct ConnectionPlumbing {
    max_connections: usize,
    stopping: AtomicBool,
    accepted: AtomicU64,
    shed: AtomicU64,
    active: AtomicUsize,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnectionPlumbing {
    pub fn new(max_connections: usize) -> Self {
        ConnectionPlumbing {
            max_connections,
            stopping: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            connections: Mutex::new(Vec::new()),
        }
    }

    /// Whether shutdown has begun; per-connection loops poll this between
    /// reads.
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Count a request or connection shed by an admission bound.
    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Track a connection thread, reaping finished ones first.
    fn track(&self, handle: JoinHandle<()>) {
        let mut connections = self.connections.lock().expect("connections poisoned");
        let mut i = 0;
        while i < connections.len() {
            if connections[i].is_finished() {
                let done = connections.swap_remove(i);
                let _ = done.join();
            } else {
                i += 1;
            }
        }
        connections.push(handle);
    }

    /// Begin shutdown: raise the stop flag and poke the accept loop loose
    /// with a throwaway connection (harmless if the listener already
    /// failed).
    pub fn begin_shutdown(&self, addr: SocketAddr) {
        self.stopping.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    /// Join every tracked connection thread (after the accept loop has
    /// exited, so no new ones appear).
    pub fn join_connections(&self) {
        let connections: Vec<JoinHandle<()>> = self
            .connections
            .lock()
            .expect("connections poisoned")
            .drain(..)
            .collect();
        for connection in connections {
            let _ = connection.join();
        }
    }
}

/// Run the accept loop until shutdown or listener failure. `reject`
/// writes the protocol-appropriate over-capacity farewell on the caller's
/// thread; `serve` handles one admitted connection on its own thread (the
/// live-connection gauge is maintained here).
pub(crate) fn accept_loop(
    plumbing: &Arc<ConnectionPlumbing>,
    listener: TcpListener,
    reject: impl Fn(TcpStream),
    serve: Arc<dyn Fn(TcpStream) + Send + Sync>,
) {
    for incoming in listener.incoming() {
        if plumbing.stopping() {
            return;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        plumbing.accepted.fetch_add(1, Ordering::Relaxed);
        // Only this thread increments `active`, so check-then-increment
        // cannot overshoot the cap.
        if plumbing.active.load(Ordering::Acquire) >= plumbing.max_connections {
            plumbing.shed.fetch_add(1, Ordering::Relaxed);
            reject(stream);
            continue;
        }
        plumbing.active.fetch_add(1, Ordering::AcqRel);
        let thread_plumbing = Arc::clone(plumbing);
        let thread_serve = Arc::clone(&serve);
        let handle = std::thread::spawn(move || {
            thread_serve(stream);
            thread_plumbing.active.fetch_sub(1, Ordering::AcqRel);
        });
        plumbing.track(handle);
    }
}
