//! The unified artifact store: one keyed-entry interface over the schema
//! catalog, the sharded LRU result tier, and the optional disk tier.
//!
//! Every servable artifact — a flat summary or a multi-level stack — is
//! addressed by a [`ResultKey`]: the schema's content fingerprint, the
//! result *shape* (algorithm plus `k` or level sizes), and the full
//! summarizer configuration. The store serves a key through three tiers:
//!
//! 1. **memory** — the sharded, cost-weighted LRU (`hits`);
//! 2. **disk** — the optional spill directory, rehydrated with its
//!    original recomputation cost and promoted back into memory
//!    (`disk_hits`);
//! 3. **compute** — the caller-supplied closure, run under per-key
//!    single-flight so N concurrent misses on one key compute once
//!    (`misses`), then spilled to disk and inserted into memory.
//!
//! Invalidation drops a fingerprint from all three tiers at once.

use crate::catalog::SchemaCatalog;
use crate::disk::{DiskTier, KIND_FLAT, KIND_MULTILEVEL};
use crate::lru::ShardedLru;
use crate::service::{MultiLevelArtifact, ServiceError, SummaryResult};
use schema_summary_algo::{plan_delta, Algorithm, SummarizerConfig};
use schema_summary_core::{DeltaClass, SchemaDelta, SchemaFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What kind of answer a key names (and the request parameters that shape
/// it). Part of [`ResultKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ResultShape {
    /// A flat summary of size `k`.
    Flat { algorithm: Algorithm, k: usize },
    /// A multi-level stack with the given level sizes, finest first.
    MultiLevel {
        algorithm: Algorithm,
        sizes: Vec<usize>,
    },
}

/// The store's unit of addressing: schema content + result shape + full
/// summarizer configuration (`SummarizerConfig` is `Hash + Eq` with
/// bit-stable float comparison).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ResultKey {
    pub fingerprint: SchemaFingerprint,
    pub shape: ResultShape,
    pub options: SummarizerConfig,
}

impl ResultKey {
    /// Disk-tier kind byte for this key's shape.
    pub fn kind(&self) -> u8 {
        match self.shape {
            ResultShape::Flat { .. } => KIND_FLAT,
            ResultShape::MultiLevel { .. } => KIND_MULTILEVEL,
        }
    }

    /// Canonical key-meta string for the disk tier: stable across
    /// processes, verified byte-for-byte on load.
    pub fn meta(&self) -> String {
        let options = serde_json::to_string(&self.options).expect("config serializes");
        match &self.shape {
            ResultShape::Flat { algorithm, k } => {
                format!(
                    "flat|{}|{algorithm}|{k}|{options}",
                    self.fingerprint.to_hex()
                )
            }
            ResultShape::MultiLevel { algorithm, sizes } => {
                let sizes = sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "mls|{}|{algorithm}|{sizes}|{options}",
                    self.fingerprint.to_hex()
                )
            }
        }
    }
}

/// A cached answer, shared with every requester via `Arc`.
#[derive(Debug, Clone)]
pub(crate) enum CachedArtifact {
    Flat(Arc<SummaryResult>),
    MultiLevel(Arc<MultiLevelArtifact>),
}

impl CachedArtifact {
    fn to_payload(&self) -> Vec<u8> {
        match self {
            CachedArtifact::Flat(result) => serde_json::to_string(result.as_ref()),
            CachedArtifact::MultiLevel(artifact) => serde_json::to_string(artifact.as_ref()),
        }
        .expect("artifact serializes")
        .into_bytes()
    }

    fn from_payload(kind: u8, payload: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(payload).ok()?;
        match kind {
            KIND_FLAT => {
                let result: SummaryResult = serde_json::from_str(text).ok()?;
                Some(CachedArtifact::Flat(Arc::new(result)))
            }
            KIND_MULTILEVEL => {
                let artifact: MultiLevelArtifact = serde_json::from_str(text).ok()?;
                Some(CachedArtifact::MultiLevel(Arc::new(artifact)))
            }
            _ => None,
        }
    }
}

/// One in-flight cold computation (single-flight): the first thread to
/// miss on a key becomes the leader and computes; followers block here
/// until the leader publishes, then serve the shared result without ever
/// running the algorithm themselves.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    /// `Some` carries the leader's answer; `None` means the leader failed
    /// (or panicked) and followers must compute for themselves.
    Done(Option<CachedArtifact>),
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<CachedArtifact> {
        let guard = self.state.lock().expect("flight poisoned");
        let guard = self
            .cv
            .wait_while(guard, |s| matches!(s, FlightState::Pending))
            .expect("flight poisoned");
        match &*guard {
            FlightState::Done(result) => result.clone(),
            FlightState::Pending => unreachable!("wait_while admits only Done"),
        }
    }
}

/// Publishes the leader's outcome on drop — including during a panic
/// unwind — so followers are never stranded on a vanished leader. The
/// in-flight entry is removed *after* the memory insert, so late arrivals
/// find the cached result.
struct FlightPublisher<'a> {
    store: &'a ArtifactStore,
    key: ResultKey,
    flight: Arc<Flight>,
    result: Option<CachedArtifact>,
}

impl Drop for FlightPublisher<'_> {
    fn drop(&mut self) {
        self.store
            .in_flight
            .lock()
            .expect("in-flight map poisoned")
            .remove(&self.key);
        *self.flight.state.lock().expect("flight poisoned") = FlightState::Done(self.result.take());
        self.flight.cv.notify_all();
    }
}

/// The tiered store itself. Owned by
/// [`SummaryService`](crate::SummaryService); all methods take `&self`.
pub(crate) struct ArtifactStore {
    catalog: SchemaCatalog,
    results: ShardedLru<ResultKey, CachedArtifact>,
    in_flight: Mutex<HashMap<ResultKey, Arc<Flight>>>,
    disk: Option<Arc<DiskTier>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    admin_evictions: AtomicU64,
    compute_micros: AtomicU64,
    evicted_compute_micros: AtomicU64,
    delta_refreshes: AtomicU64,
    delta_rows_recomputed: AtomicU64,
    delta_fallback_cold: AtomicU64,
    /// Warm refreshes split by delta class (`delta_refreshes` stays the
    /// class-agnostic total): pure cardinality rescales, same-graph edge
    /// splices, and additive structural (grown) splices. Cold fallbacks
    /// keep their own counter above.
    delta_refreshes_rescale: AtomicU64,
    delta_refreshes_splice: AtomicU64,
    delta_refreshes_structural: AtomicU64,
}

/// What [`ArtifactStore::refresh`] did with a schema delta.
pub(crate) enum RefreshOutcome {
    /// Empty delta — nothing touched.
    Noop,
    /// The delta could not be served warm (structural change, oversized
    /// footprint, missing catalog entries, or no spliceable matrices);
    /// the old fingerprint was invalidated cold. Carries the number of
    /// cached results dropped.
    Cold(usize),
    /// Matrices were spliced onto the new fingerprint and the old
    /// fingerprint fully invalidated.
    Warm {
        /// Cached results dropped with the old fingerprint.
        dropped: usize,
        /// Old result keys whose artifacts can be re-derived warm: the
        /// key, the old cached artifact, and the recompute mask of the
        /// key's configuration.
        derive: Vec<(ResultKey, CachedArtifact, Arc<Vec<bool>>)>,
    },
}

impl ArtifactStore {
    pub fn new(
        cache_capacity: usize,
        cache_shards: usize,
        catalog_shards: usize,
        disk: Option<Arc<DiskTier>>,
    ) -> Self {
        ArtifactStore {
            catalog: SchemaCatalog::with_tiers(catalog_shards, disk.clone()),
            results: ShardedLru::new(cache_capacity, cache_shards),
            in_flight: Mutex::new(HashMap::new()),
            disk,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            admin_evictions: AtomicU64::new(0),
            compute_micros: AtomicU64::new(0),
            evicted_compute_micros: AtomicU64::new(0),
            delta_refreshes: AtomicU64::new(0),
            delta_rows_recomputed: AtomicU64::new(0),
            delta_fallback_cold: AtomicU64::new(0),
            delta_refreshes_rescale: AtomicU64::new(0),
            delta_refreshes_splice: AtomicU64::new(0),
            delta_refreshes_structural: AtomicU64::new(0),
        }
    }

    pub fn catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Serve `key` through the tiers. Returns the artifact and whether it
    /// came from a cache tier (memory or disk) rather than `compute`.
    ///
    /// `compute` may run more than once only if a leader fails and a
    /// follower retries — never concurrently for one key.
    pub fn serve(
        &self,
        key: &ResultKey,
        compute: &dyn Fn() -> Result<CachedArtifact, ServiceError>,
    ) -> Result<(CachedArtifact, bool), ServiceError> {
        loop {
            if let Some(artifact) = self.results.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((artifact, true));
            }
            let (flight, leader) = {
                let mut in_flight = self.in_flight.lock().expect("in-flight map poisoned");
                match in_flight.get(key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        let flight = Arc::new(Flight::new());
                        in_flight.insert(key.clone(), Arc::clone(&flight));
                        (Arc::clone(&flight), true)
                    }
                }
            };
            if leader {
                let mut publisher = FlightPublisher {
                    store: self,
                    key: key.clone(),
                    flight,
                    result: None,
                };
                // Disk before compute: a rehydrated artifact keeps its
                // original recomputation cost for the eviction policy.
                if let Some(disk) = &self.disk {
                    if let Some((payload, cost)) =
                        disk.load(key.fingerprint, key.kind(), &key.meta())
                    {
                        if let Some(artifact) = CachedArtifact::from_payload(key.kind(), &payload) {
                            self.disk_hits.fetch_add(1, Ordering::Relaxed);
                            self.insert(key, artifact.clone(), cost.max(1));
                            publisher.result = Some(artifact.clone());
                            return Ok((artifact, true));
                        }
                        // Envelope was valid but the payload did not
                        // decode: treat as corruption and fall through to
                        // compute (the overwrite below repairs the file).
                        eprintln!(
                            "warning: schema-summary store: artifact payload for key {} did not decode; recomputing",
                            key.meta()
                        );
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let artifact = compute()?;
                // Floored at 1µs so even trivially fast entries carry a
                // nonzero cost (a zero would make them permanent eviction
                // victims for the wrong reason: "free", not "cheap").
                let cost = (started.elapsed().as_micros() as u64).max(1);
                self.compute_micros.fetch_add(cost, Ordering::Relaxed);
                if let Some(disk) = &self.disk {
                    disk.store(
                        key.fingerprint,
                        key.kind(),
                        &key.meta(),
                        cost,
                        &artifact.to_payload(),
                    );
                }
                self.insert(key, artifact.clone(), cost);
                publisher.result = Some(artifact.clone());
                return Ok((artifact, false));
            }
            match flight.wait() {
                Some(artifact) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((artifact, true));
                }
                // The leader failed; retry from the top (most likely
                // becoming the new leader and reporting the same error).
                None => continue,
            }
        }
    }

    fn insert(&self, key: &ResultKey, artifact: CachedArtifact, cost: u64) {
        if let Some((_, _, evicted_cost)) = self.results.insert(key.clone(), artifact, cost) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_compute_micros
                .fetch_add(evicted_cost, Ordering::Relaxed);
        }
    }

    /// Route a schema delta through the warm path: derive the new
    /// fingerprint's artifacts from the old fingerprint's where the delta
    /// provably allows it, then drop the old fingerprint from every tier.
    ///
    /// For every configuration whose matrices the old catalog entry had
    /// materialized, [`plan_delta`] computes the exact set of matrix rows
    /// the delta can influence; when it qualifies (same graph, footprint
    /// within `max_fraction` of the elements), those rows are re-explored
    /// and spliced into the old matrices, and the result is seeded into
    /// the new entry's artifact holder — bit-identical to a cold compute,
    /// at a fraction of the cost. Old cached results whose configuration
    /// was spliced are returned for warm re-derivation by the caller
    /// (under the normal single-flight `serve`).
    ///
    /// On the same warm path, every old importance vector is staged as a
    /// fixpoint restart seed on the new entry
    /// ([`crate::catalog::Artifacts::seed_importance`]): the restart
    /// conserves mass exactly and converges into the same
    /// `ImportanceConfig::epsilon` ball as a cold run in a fraction of
    /// the iterations, but stops at an ε-close — not bit-identical —
    /// point. Matrices stay bit-exact; importance carries the documented
    /// ε tolerance (DESIGN.md §3.19).
    ///
    /// Falls back to a plain cold [`invalidate`](Self::invalidate) — and
    /// counts `delta_fallback_cold` — when the delta is structural or
    /// oversized, either fingerprint is not registered, or no old
    /// matrices exist to splice from.
    pub fn refresh(
        &self,
        old_fp: SchemaFingerprint,
        new_fp: SchemaFingerprint,
        delta: &SchemaDelta,
        max_fraction: f64,
    ) -> RefreshOutcome {
        if delta.is_empty() {
            return RefreshOutcome::Noop;
        }
        let (Some(old_entry), Some(new_entry)) =
            (self.catalog.get(old_fp), self.catalog.get(new_fp))
        else {
            self.delta_fallback_cold.fetch_add(1, Ordering::Relaxed);
            return RefreshOutcome::Cold(self.invalidate(old_fp));
        };
        let mut spliced: Vec<(SummarizerConfig, Arc<Vec<bool>>)> = Vec::new();
        let mut rows_total = 0u64;
        // Importance seeds, staged alongside the matrix splices: any
        // configuration whose importance the old entry had forced can
        // hand its vector to the new entry as a fixpoint restart seed
        // (ε-close, mass-conserving — see `Artifacts::importance`), even
        // when that configuration's matrices were never materialized.
        let mut importance_seeds = Vec::new();
        for (config, artifacts) in old_entry.memoized() {
            if let Some(previous) = artifacts.importance_if_computed() {
                importance_seeds.push((
                    config.clone(),
                    previous,
                    old_entry.stats().clone(),
                    artifacts.importance_baseline_iters(),
                ));
            }
            let Some(old_matrices) = artifacts.matrices_if_computed() else {
                continue;
            };
            if !old_matrices.has_source_meta() {
                continue; // legacy-decoded matrices cannot be spliced
            }
            let Some(plan) = plan_delta(
                delta,
                old_entry.graph(),
                old_entry.stats(),
                new_entry.graph(),
                new_entry.stats(),
                &old_matrices,
                &config.paths,
                max_fraction,
            ) else {
                continue;
            };
            let started = Instant::now();
            let Some(new_matrices) =
                old_matrices.splice(new_entry.stats(), &config.paths, &plan.recompute)
            else {
                continue;
            };
            // The seeded set's recomputation cost is a full cold compute,
            // not the splice time: attribute the old cost forward so the
            // disk tier's quota eviction does not treat it as nearly free.
            let splice_micros = (started.elapsed().as_micros() as u64).max(1);
            let cost = artifacts.matrices_cost_micros().max(splice_micros);
            new_entry
                .artifacts(&config)
                .seed_matrices(Arc::new(new_matrices), cost);
            rows_total += plan.rows as u64;
            // The mask handed to warm re-derivation marks rows whose matrix
            // *values* may differ from the old ones. Re-explored rows
            // always qualify; under a cardinality rescale every coverage
            // row was rewritten, so downstream row-reuse (multi-level
            // patching) must treat all rows as changed.
            let row_changed = if plan.rescaled {
                vec![true; plan.recompute.len()]
            } else {
                plan.recompute
            };
            spliced.push((config, Arc::new(row_changed)));
        }
        if spliced.is_empty() {
            self.delta_fallback_cold.fetch_add(1, Ordering::Relaxed);
            return RefreshOutcome::Cold(self.invalidate(old_fp));
        }
        // The refresh qualifies as warm: stage the old importance vectors
        // so the new entry's first `importance()` call restarts the
        // fixpoint from them instead of a cold cardinality init.
        for (config, previous, previous_stats, baseline_iters) in importance_seeds {
            new_entry
                .artifacts(&config)
                .seed_importance(previous, previous_stats, baseline_iters);
        }
        // Snapshot the old fingerprint's cached results for the spliced
        // configurations before the invalidation below drops them; the
        // caller re-derives each under the new fingerprint.
        let derive: Vec<(ResultKey, CachedArtifact, Arc<Vec<bool>>)> = self
            .results
            .entries()
            .into_iter()
            .filter(|(key, _)| key.fingerprint == old_fp)
            .filter_map(|(key, _)| {
                let mask = spliced
                    .iter()
                    .find(|(config, _)| *config == key.options)
                    .map(|(_, mask)| Arc::clone(mask))?;
                let artifact = self.results.get(&key)?;
                Some((key, artifact, mask))
            })
            .collect();
        self.delta_refreshes.fetch_add(1, Ordering::Relaxed);
        // Split the warm total by the delta's class: a pure rescale spliced
        // zero rows, an edge touch re-explored in place, an additive
        // structural delta grew the matrices. (Destructive deltas never
        // plan warm, so they only ever land on `delta_fallback_cold`.)
        match delta.class {
            DeltaClass::Rescale => &self.delta_refreshes_rescale,
            DeltaClass::EdgeTouch => &self.delta_refreshes_splice,
            DeltaClass::AdditiveStructural => &self.delta_refreshes_structural,
            DeltaClass::Destructive => &self.delta_fallback_cold,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.delta_rows_recomputed
            .fetch_add(rows_total, Ordering::Relaxed);
        let dropped = self.invalidate(old_fp);
        RefreshOutcome::Warm { dropped, derive }
    }

    /// Drop one fingerprint from every tier: catalog entry (with memoized
    /// artifacts), cached results, and spilled files. Returns the number
    /// of cached results dropped.
    pub fn invalidate(&self, fingerprint: SchemaFingerprint) -> usize {
        self.catalog.remove(fingerprint);
        if let Some(disk) = &self.disk {
            disk.purge(fingerprint);
        }
        let dropped = self.results.retain(|key| key.fingerprint != fingerprint);
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Admin eviction: drop one fingerprint's cached *results* (memory and
    /// spilled summaries), keeping the catalog entry and memoized matrices
    /// so the schema stays registered and the next request recomputes only
    /// the selection. Returns the number of in-memory results dropped.
    pub fn evict_results(&self, fingerprint: SchemaFingerprint) -> usize {
        if let Some(disk) = &self.disk {
            disk.purge_results(fingerprint);
        }
        let dropped = self.results.retain(|key| key.fingerprint != fingerprint);
        self.admin_evictions
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Snapshot the resident result keys with their recomputation costs
    /// (the `GET /admin/cache` view).
    pub fn result_entries(&self) -> Vec<(ResultKey, u64)> {
        self.results.entries()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    pub fn admin_evictions(&self) -> u64 {
        self.admin_evictions.load(Ordering::Relaxed)
    }

    pub fn delta_refreshes(&self) -> u64 {
        self.delta_refreshes.load(Ordering::Relaxed)
    }

    pub fn delta_rows_recomputed(&self) -> u64 {
        self.delta_rows_recomputed.load(Ordering::Relaxed)
    }

    pub fn delta_fallback_cold(&self) -> u64 {
        self.delta_fallback_cold.load(Ordering::Relaxed)
    }

    pub fn delta_refreshes_rescale(&self) -> u64 {
        self.delta_refreshes_rescale.load(Ordering::Relaxed)
    }

    pub fn delta_refreshes_splice(&self) -> u64 {
        self.delta_refreshes_splice.load(Ordering::Relaxed)
    }

    pub fn delta_refreshes_structural(&self) -> u64 {
        self.delta_refreshes_structural.load(Ordering::Relaxed)
    }

    pub fn compute_micros(&self) -> u64 {
        self.compute_micros.load(Ordering::Relaxed)
    }

    pub fn evicted_compute_micros(&self) -> u64 {
        self.evicted_compute_micros.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.results.len()
    }

    pub fn cached_compute_micros(&self) -> u64 {
        self.results.total_cost()
    }

    pub fn result_shard_lens(&self) -> Vec<usize> {
        self.results.shard_lens()
    }
}
