//! The HTTP/1.1 server: per-connection keep-alive loop over the shared
//! listener plumbing, with summary computation on the bounded worker
//! pool.
//!
//! Each connection gets a thread (same model as the line-JSON server)
//! that reads into a buffer, parses requests incrementally, and answers
//! in order. Reads poll with a short timeout so the thread notices
//! shutdown; a request already fully received is always answered before
//! the connection closes. Parse failures are terminal: the mapped status
//! (`400`/`413`/`431`/`505`) is written with `Connection: close` and the
//! connection ends, because the byte stream can no longer be trusted to
//! be request-aligned.

use crate::http::fanout::Fanout;
use crate::http::request::{parse_request, ParseError, ParseOutcome};
use crate::http::response::HttpResponse;
use crate::http::router::{route, ExecOutcome, RouteContext};
use crate::http::{HttpConfig, HttpServerStats};
use crate::listener::{accept_loop, ConnectionPlumbing, POLL_INTERVAL};
use crate::pool::WorkerPool;
use crate::service::{SummaryRequest, SummaryService};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

struct Inner {
    service: Arc<SummaryService>,
    config: HttpConfig,
    pool: WorkerPool,
    plumbing: Arc<ConnectionPlumbing>,
    served: AtomicU64,
    timed_out: AtomicU64,
    /// Peer broadcaster for admin mutations; `None` without `--peer`s.
    fanout: Option<Fanout>,
}

impl Inner {
    fn stats(&self) -> HttpServerStats {
        HttpServerStats {
            accepted: self.plumbing.accepted(),
            served: self.served.load(Ordering::Relaxed),
            shed: self.plumbing.shed(),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            active_connections: self.plumbing.active(),
            fanout_sent: self.fanout.as_ref().map_or(0, Fanout::sent),
            fanout_failed: self.fanout.as_ref().map_or(0, Fanout::failed),
        }
    }

    /// Run one summary request on the worker pool, waiting up to the
    /// request timeout.
    fn execute(&self, request: SummaryRequest) -> ExecOutcome {
        let (tx, rx) = mpsc::channel();
        let service = Arc::clone(&self.service);
        let admitted = self.pool.try_execute(move || {
            let _ = tx.send(service.handle_request(&request));
        });
        if admitted.is_err() {
            self.plumbing.count_shed();
            return ExecOutcome::Overloaded;
        }
        match rx.recv_timeout(self.config.request_timeout) {
            Ok(result) => ExecOutcome::Done(result),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                ExecOutcome::TimedOut(self.config.request_timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => ExecOutcome::Lost,
        }
    }

    /// Answer one parsed request and emit the audit line.
    fn respond(&self, peer: &str, req: &crate::http::request::HttpRequest) -> HttpResponse {
        let started = Instant::now();
        let ctx = RouteContext {
            service: &self.service,
            http_stats: self.stats(),
            execute: &|request| self.execute(request),
            fanout: self.fanout.as_ref(),
        };
        let response = route(&ctx, req);
        self.served.fetch_add(1, Ordering::Relaxed);
        if self.config.log_requests {
            eprintln!(
                "http {peer} \"{} {}\" {} {}us",
                req.method,
                req.target,
                response.status,
                started.elapsed().as_micros()
            );
        }
        response
    }
}

fn parse_error_response(e: ParseError) -> HttpResponse {
    let mut resp = match e {
        ParseError::Malformed(detail) => HttpResponse::error(400, "malformed", detail),
        ParseError::HeadTooLarge => HttpResponse::error(
            431,
            "headers_too_large",
            "request head exceeds the byte limit",
        ),
        ParseError::BodyTooLarge => {
            HttpResponse::error(413, "body_too_large", "request body exceeds the byte limit")
        }
        ParseError::UnsupportedVersion => {
            HttpResponse::error(505, "unsupported_version", "only HTTP/1.0 and HTTP/1.1")
        }
    };
    resp.close = true;
    resp
}

/// Serve one connection until close, error, or shutdown.
fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "-".to_string());
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete request already buffered.
        loop {
            match parse_request(&pending) {
                ParseOutcome::Complete(request, consumed) => {
                    pending.drain(..consumed);
                    let response = inner.respond(&peer, &request);
                    let keep_alive = request.keep_alive() && !response.must_close();
                    if response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
                        return;
                    }
                }
                ParseOutcome::Failed(e) => {
                    if inner.config.log_requests {
                        eprintln!("http {peer} \"<unparseable>\" {e:?}");
                    }
                    inner.served.fetch_add(1, Ordering::Relaxed);
                    let _ = parse_error_response(e).write_to(&mut stream, false);
                    return;
                }
                ParseOutcome::Incomplete => break,
            }
        }
        if inner.plumbing.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A running HTTP/1.1 front-end over a shared [`SummaryService`].
///
/// Bind with [`HttpServer::bind`], point any HTTP client at
/// [`HttpServer::local_addr`], and stop with [`HttpServer::shutdown`]
/// (or drop the server, which shuts down too).
pub struct HttpServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `service` over HTTP.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<SummaryService>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let fanout = if config.peers.is_empty() {
            None
        } else {
            Some(Fanout::new(config.peers.clone(), config.request_timeout))
        };
        let inner = Arc::new(Inner {
            service,
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            plumbing: Arc::new(ConnectionPlumbing::new(config.max_connections)),
            config,
            served: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            fanout,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            let serve_inner = Arc::clone(&accept_inner);
            let serve: Arc<dyn Fn(TcpStream) + Send + Sync> =
                Arc::new(move |stream| handle_connection(&serve_inner, stream));
            accept_loop(
                &accept_inner.plumbing,
                listener,
                |mut stream| {
                    let mut resp =
                        HttpResponse::error(503, "overloaded", "connection limit reached");
                    resp.close = true;
                    let _ = resp.write_to(&mut stream, false);
                },
                serve,
            );
        });
        Ok(HttpServer {
            inner,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> HttpServerStats {
        self.inner.stats()
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<SummaryService> {
        &self.inner.service
    }

    /// Block on the accept loop (which runs until shutdown or a listener
    /// failure). Used by the CLI's `serve --http`; connections keep being
    /// served while this blocks.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, answer every request already
    /// read from open connections, drain the worker queue, join all
    /// threads. Returns the final counters.
    pub fn shutdown(mut self) -> HttpServerStats {
        self.shutdown_in_place();
        self.inner.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.inner.plumbing.begin_shutdown(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.inner.plumbing.join_connections();
        self.inner.pool.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_in_place();
        }
    }
}
