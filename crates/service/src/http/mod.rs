//! HTTP/1.1 front-end for [`SummaryService`](crate::SummaryService):
//! framing, routing, the observability plane, and the admin plane — all
//! standard library, no async runtime.
//!
//! The subsystem is layered:
//!
//! * [`request`](self::request) — incremental request parsing with strict
//!   limits (8 KiB head, 1 MiB body, `Content-Length` or chunked bodies);
//! * [`response`](self::response) — response construction/serialization;
//! * [`router`](self::router) — `(method, path)` dispatch onto the
//!   service (`/v1/*`), metrics/health (`/metrics`, `/healthz`), and
//!   admin (`/admin/*`) handlers;
//! * [`metrics`](self::metrics) — Prometheus text exposition of the
//!   cache, store, catalog, and server counters;
//! * [`server`](self::server) — the keep-alive connection loop on the
//!   shared listener plumbing, with summary computation on the bounded
//!   worker pool (`503` when the queue is full, `504` on timeout).

pub(crate) mod fanout;
pub(crate) mod metrics;
pub(crate) mod request;
pub(crate) mod response;
pub(crate) mod router;
mod server;

pub use server::HttpServer;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Worker threads executing summarize requests.
    pub workers: usize,
    /// Bound on requests waiting for a worker; beyond it requests are
    /// answered `503 overloaded` instead of buffering without bound.
    pub queue_capacity: usize,
    /// Concurrent connection cap; further connections get one `503` and
    /// are closed.
    pub max_connections: usize,
    /// Per-request wall-clock budget; slower answers become `504`.
    pub request_timeout: Duration,
    /// Emit a one-line audit record per request (method, target, status,
    /// latency) on stderr.
    pub log_requests: bool,
    /// Peer node addresses (`host:port`) for cross-node invalidation:
    /// locally initiated `POST /admin/evict` and `POST /admin/refresh`
    /// are re-broadcast to each peer after applying locally. Empty in
    /// single-node deployments.
    pub peers: Vec<String>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 4,
            queue_capacity: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
            log_requests: false,
            peers: Vec::new(),
        }
    }
}

/// Point-in-time HTTP server counters, alongside
/// [`CacheStats`](crate::CacheStats) for the cache underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpServerStats {
    /// TCP connections accepted (including ones shed by the connection
    /// cap).
    pub accepted: u64,
    /// HTTP requests answered, whatever the status.
    pub served: u64,
    /// Requests and connections shed by the queue bound or connection
    /// cap.
    pub shed: u64,
    /// Requests that exceeded the per-request timeout.
    pub timed_out: u64,
    /// Connections currently open.
    pub active_connections: usize,
    /// Admin broadcasts delivered to peers (2xx or 404).
    pub fanout_sent: u64,
    /// Admin broadcasts that failed to reach a peer.
    pub fanout_failed: u64,
}

impl fmt::Display for HttpServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accepted, {} served, {} shed, {} timed out, {} active, {} fanned out",
            self.accepted,
            self.served,
            self.shed,
            self.timed_out,
            self.active_connections,
            self.fanout_sent
        )
    }
}
