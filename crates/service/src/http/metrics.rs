//! Prometheus text exposition (`GET /metrics`).
//!
//! Version 0.0.4 text format: `# HELP` / `# TYPE` preamble per family,
//! one sample per line. Counter families end in `_total`; point-in-time
//! values are gauges. Per-shard occupancy is labelled
//! `{shard="<index>"}`.

use crate::http::HttpServerStats;
use crate::service::{CacheStats, CatalogStats};
use std::fmt::Write as _;

pub(crate) fn family(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

pub(crate) fn labeled(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    samples: &[(&str, &str, u64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (label, value, sample) in samples {
        let _ = writeln!(out, "{name}{{{label}=\"{value}\"}} {sample}");
    }
}

fn sharded(out: &mut String, name: &str, help: &str, entries: &[usize]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (shard, len) in entries.iter().enumerate() {
        let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {len}");
    }
}

/// Render every counter the service exposes as one Prometheus text page.
pub(crate) fn render(cache: &CacheStats, catalog: &CatalogStats, http: &HttpServerStats) -> String {
    let mut out = String::new();

    // Result-cache tiers.
    family(
        &mut out,
        "schema_summary_cache_hits_total",
        "counter",
        "Requests answered from the in-memory result cache.",
        cache.hits,
    );
    family(
        &mut out,
        "schema_summary_cache_misses_total",
        "counter",
        "Requests that ran a summarization algorithm.",
        cache.misses,
    );
    family(
        &mut out,
        "schema_summary_cache_disk_hits_total",
        "counter",
        "Requests answered by rehydrating a spilled result.",
        cache.disk_hits,
    );
    family(
        &mut out,
        "schema_summary_cache_evictions_total",
        "counter",
        "Entries displaced by LRU capacity pressure.",
        cache.evictions,
    );
    family(
        &mut out,
        "schema_summary_cache_invalidations_total",
        "counter",
        "Entries dropped by delta-driven invalidation.",
        cache.invalidations,
    );
    family(
        &mut out,
        "schema_summary_cache_admin_evictions_total",
        "counter",
        "Entries dropped through the admin evict endpoint.",
        cache.admin_evictions,
    );
    // Drop-accounting reconciliation: every cached result that leaves the
    // in-memory tier is counted exactly once under its cause, so the sum
    // of this family equals evictions + invalidations + admin_evictions.
    labeled(
        &mut out,
        "schema_summary_results_dropped_total",
        "counter",
        "Cached results dropped from the in-memory tier, by cause.",
        &[
            ("cause", "capacity", cache.evictions),
            ("cause", "invalidation", cache.invalidations),
            ("cause", "admin", cache.admin_evictions),
        ],
    );
    family(
        &mut out,
        "schema_summary_cache_entries",
        "gauge",
        "Results currently cached in memory.",
        cache.entries as u64,
    );
    family(
        &mut out,
        "schema_summary_schemas",
        "gauge",
        "Schemas currently registered in the catalog.",
        cache.schemas as u64,
    );

    // Compute accounting.
    family(
        &mut out,
        "schema_summary_compute_micros_total",
        "counter",
        "Wall time spent computing cold results, microseconds.",
        cache.compute_micros,
    );
    family(
        &mut out,
        "schema_summary_cached_compute_micros",
        "gauge",
        "Recomputation cost of the resident cache entries, microseconds.",
        cache.cached_compute_micros,
    );
    family(
        &mut out,
        "schema_summary_evicted_compute_micros_total",
        "counter",
        "Recomputation cost displaced by capacity eviction, microseconds.",
        cache.evicted_compute_micros,
    );
    family(
        &mut out,
        "schema_summary_matrices_computed_total",
        "counter",
        "All-pairs matrix computations actually run.",
        cache.matrices_computed,
    );
    family(
        &mut out,
        "schema_summary_matrices_rehydrated_total",
        "counter",
        "All-pairs matrix computations avoided by disk rehydration.",
        cache.matrices_rehydrated,
    );

    // Warm-path delta maintenance.
    family(
        &mut out,
        "schema_summary_delta_refreshes_total",
        "counter",
        "Schema deltas served warm by splicing matrices across fingerprints.",
        cache.delta_refreshes,
    );
    // Refresh-accounting reconciliation: every delta routed through the
    // refresh path lands in exactly one class — the three warm classes
    // sum to delta_refreshes, and `cold` mirrors delta_fallback_cold.
    labeled(
        &mut out,
        "schema_summary_delta_refreshes_by_class_total",
        "counter",
        "Schema deltas routed through the refresh path, by outcome class.",
        &[
            ("class", "rescale", cache.delta_refreshes_rescale),
            ("class", "splice", cache.delta_refreshes_splice),
            ("class", "structural", cache.delta_refreshes_structural),
            ("class", "cold", cache.delta_fallback_cold),
        ],
    );
    family(
        &mut out,
        "schema_summary_delta_rows_recomputed_total",
        "counter",
        "Matrix rows recomputed by warm delta refreshes.",
        cache.delta_rows_recomputed,
    );
    family(
        &mut out,
        "schema_summary_delta_fallback_cold_total",
        "counter",
        "Schema deltas that fell back to cold invalidation.",
        cache.delta_fallback_cold,
    );
    family(
        &mut out,
        "schema_summary_importance_seeded_total",
        "counter",
        "Importance fixpoints restarted from a previous version's vector.",
        cache.importance_seeded,
    );
    family(
        &mut out,
        "schema_summary_importance_iterations_saved_total",
        "counter",
        "Fixpoint iterations seeded restarts stopped short of their cold baseline.",
        cache.importance_iterations_saved,
    );

    // Catalog durability.
    family(
        &mut out,
        "schema_summary_catalog_rehydrated_total",
        "counter",
        "Named registrations replayed from the catalog journal at startup.",
        cache.catalog_rehydrated,
    );

    // Disk tier.
    family(
        &mut out,
        "schema_summary_store_disk_writes_total",
        "counter",
        "Artifact files spilled to the disk tier.",
        cache.disk_writes,
    );
    family(
        &mut out,
        "schema_summary_store_disk_corrupt_total",
        "counter",
        "Disk-tier files discarded as corrupt.",
        cache.disk_corrupt,
    );
    family(
        &mut out,
        "schema_summary_store_bytes_on_disk",
        "gauge",
        "Bytes currently spilled under the store directory.",
        cache.disk_bytes,
    );
    family(
        &mut out,
        "schema_summary_store_quota_evictions_total",
        "counter",
        "Spilled artifacts evicted to enforce the disk byte quota.",
        cache.quota_evictions,
    );

    // Shard occupancy.
    sharded(
        &mut out,
        "schema_summary_catalog_shard_entries",
        "Registered schemas per catalog shard.",
        &catalog.catalog_shard_entries,
    );
    sharded(
        &mut out,
        "schema_summary_result_shard_entries",
        "Cached results per LRU shard.",
        &catalog.result_shard_entries,
    );

    // HTTP front-end.
    family(
        &mut out,
        "schema_summary_http_accepted_total",
        "counter",
        "TCP connections accepted by the HTTP listener.",
        http.accepted,
    );
    family(
        &mut out,
        "schema_summary_http_served_total",
        "counter",
        "HTTP requests answered (any status).",
        http.served,
    );
    family(
        &mut out,
        "schema_summary_http_shed_total",
        "counter",
        "HTTP requests or connections shed by admission bounds.",
        http.shed,
    );
    family(
        &mut out,
        "schema_summary_http_timed_out_total",
        "counter",
        "HTTP requests that exceeded the per-request timeout.",
        http.timed_out,
    );
    family(
        &mut out,
        "schema_summary_http_active_connections",
        "gauge",
        "HTTP connections currently open.",
        http.active_connections as u64,
    );

    // Cross-node invalidation.
    family(
        &mut out,
        "schema_summary_fanout_sent_total",
        "counter",
        "Admin broadcasts delivered to peers (2xx or 404).",
        http.fanout_sent,
    );
    family(
        &mut out,
        "schema_summary_fanout_failed_total",
        "counter",
        "Admin broadcasts that failed to reach a peer.",
        http.fanout_failed,
    );
    out
}
