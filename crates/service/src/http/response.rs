//! Response construction and serialization: status line, minimal headers
//! (`Content-Type`, `Content-Length`, `Connection`), body.

use std::io::{self, Write};

/// A fully materialized response, ready to serialize.
#[derive(Debug, Clone)]
pub(crate) struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Force `Connection: close` regardless of what the client asked for
    /// (parse errors, shedding — states where reading on is unsafe).
    pub close: bool,
    /// `Allow` header value for `405 Method Not Allowed` responses
    /// (RFC 9110 §10.2.1 requires one), `None` everywhere else.
    pub allow: Option<&'static str>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            allow: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
            allow: None,
        }
    }

    /// A structured error: `{"error":{"kind":...,"message":...}}`, the
    /// same [`WireError`](crate::server::WireError) shape the line-JSON
    /// protocol uses for its `error` field.
    pub fn error(status: u16, kind: &str, message: impl Into<String>) -> Self {
        #[derive(serde::Serialize)]
        struct ErrorBody {
            error: crate::server::WireError,
        }
        let body = ErrorBody {
            error: crate::server::WireError {
                kind: kind.to_string(),
                message: message.into(),
            },
        };
        Self::json(
            status,
            serde_json::to_string(&body).expect("error serializes"),
        )
    }

    /// Serialize onto `out`. `keep_alive` is what the request negotiated;
    /// `self.close` overrides it.
    pub fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let connection = if keep_alive && !self.close {
            "keep-alive"
        } else {
            "close"
        };
        let allow = match self.allow {
            Some(methods) => format!("Allow: {methods}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{allow}Connection: {connection}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }

    /// Whether the connection must close after this response.
    pub fn must_close(&self) -> bool {
        self.close
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_status_headers_and_body() {
        let mut out = Vec::new();
        HttpResponse::text(200, "ok\n")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn close_flag_overrides_keep_alive() {
        let mut out = Vec::new();
        let mut r = HttpResponse::error(400, "malformed", "nope");
        r.close = true;
        r.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("\"kind\":\"malformed\""));
    }

    #[test]
    fn allow_header_is_emitted_only_when_set() {
        let mut out = Vec::new();
        let mut r = HttpResponse::error(405, "method_not_allowed", "GET /v1/summary");
        r.allow = Some("POST");
        r.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: POST\r\n"));
        let mut out = Vec::new();
        HttpResponse::text(200, "ok\n").write_to(&mut out, true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Allow:"));
    }
}
