//! Request routing: maps `(method, path)` onto the service, the
//! observability plane, and the admin plane.
//!
//! | route | handler |
//! |---|---|
//! | `POST /v1/summary` | flat summary via the worker pool |
//! | `POST /v1/levels` | multi-level summary via the worker pool |
//! | `POST /v1/expand` | drill-down via the worker pool |
//! | `GET /v1/export/:schema` | condensed summary export (JSON/markdown) |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | liveness probe |
//! | `GET /admin/cache` | resident cache entries + stats |
//! | `POST /admin/evict` | drop one fingerprint's cached results |
//! | `POST /admin/refresh` | diff two schemas, refresh warm where possible |
//!
//! Summary computation always goes through the caller-supplied `execute`
//! hook (the bounded worker pool with its timeout), so HTTP clients get
//! the same load-shedding semantics as the line-JSON protocol: `503` when
//! the queue is full, `504` on per-request timeout. Inspection endpoints
//! answer inline — they read counters, not matrices.

use crate::http::fanout::{Fanout, FANOUT_HEADER};
use crate::http::metrics;
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;
use crate::server::service_error_kind;
use crate::service::{ServedReply, ServiceError, SummaryRequest, SummaryService};
use schema_summary_algo::Algorithm;
use schema_summary_core::SchemaFingerprint;
use std::sync::Arc;
use std::time::Duration;

/// How a pooled execution ended.
pub(crate) enum ExecOutcome {
    /// The worker answered (successfully or with a service error).
    Done(Result<ServedReply, ServiceError>),
    /// The admission queue was full; nothing ran.
    Overloaded,
    /// The worker did not answer within the budget (it keeps running and
    /// warms the cache for the next attempt).
    TimedOut(Duration),
    /// The worker dropped the reply channel (a bug or a poisoned worker).
    Lost,
}

/// Everything a route handler may touch.
pub(crate) struct RouteContext<'a> {
    pub service: &'a Arc<SummaryService>,
    pub http_stats: crate::http::HttpServerStats,
    pub execute: &'a dyn Fn(SummaryRequest) -> ExecOutcome,
    /// Peer broadcaster for admin mutations (`None` without peers).
    pub fanout: Option<&'a Fanout>,
}

/// Re-broadcast a locally applied admin mutation to the peers — unless
/// this request *was* a broadcast (the marker header stops loops) or
/// the local application failed (propagating a rejected mutation would
/// desynchronize peers from their own error handling).
fn propagate(ctx: &RouteContext<'_>, req: &HttpRequest, response: &HttpResponse) {
    if response.status == 200 && req.header(FANOUT_HEADER).is_none() {
        if let Some(fanout) = ctx.fanout {
            fanout.broadcast(req.path(), &req.body);
        }
    }
}

fn status_of(e: &ServiceError) -> u16 {
    match e {
        ServiceError::UnknownSchema(_) | ServiceError::UnknownFingerprint(_) => 404,
        ServiceError::BadRequest(_) | ServiceError::Algo(_) => 400,
    }
}

fn reply_json(reply: &ServedReply) -> String {
    match reply {
        ServedReply::Flat(flat) => {
            serde_json::to_string(flat.result.as_ref()).expect("result serializes")
        }
        ServedReply::MultiLevel(ml) => {
            serde_json::to_string(&ml.result.view).expect("view serializes")
        }
        ServedReply::Expansion(exp) => {
            serde_json::to_string(&exp.result).expect("expansion serializes")
        }
    }
}

/// Run one summarize-shaped request through the pool and render the
/// outcome.
fn run_pooled(ctx: &RouteContext<'_>, request: SummaryRequest) -> HttpResponse {
    match (ctx.execute)(request) {
        ExecOutcome::Done(Ok(reply)) => HttpResponse::json(200, reply_json(&reply)),
        ExecOutcome::Done(Err(e)) => {
            HttpResponse::error(status_of(&e), service_error_kind(&e), format!("{e}"))
        }
        ExecOutcome::Overloaded => HttpResponse::error(503, "overloaded", "request queue is full"),
        ExecOutcome::TimedOut(budget) => {
            HttpResponse::error(504, "timeout", format!("request exceeded {budget:?}"))
        }
        ExecOutcome::Lost => HttpResponse::error(500, "internal", "worker dropped the request"),
    }
}

/// Decode a JSON body (strictly UTF-8) into a request type.
fn decode_body<T: serde::Deserialize>(body: &[u8], what: &str) -> Result<T, HttpResponse> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpResponse::error(400, "malformed", format!("{what} is not UTF-8")))?;
    serde_json::from_str(text)
        .map_err(|e| HttpResponse::error(400, "malformed", format!("{what}: {e}")))
}

/// Decode and shape-check the body of one of the three summary routes.
fn summary_body(path: &str, body: &[u8]) -> Result<SummaryRequest, HttpResponse> {
    let request: SummaryRequest = decode_body(body, "body is not a summary request")?;
    let shape_error = match path {
        "/v1/summary" if request.levels.is_some() || request.expand.is_some() => {
            Some("a flat summary request must not carry levels or expand")
        }
        "/v1/levels" if request.levels.is_none() => Some("a levels request must carry levels"),
        "/v1/levels" if request.expand.is_some() => {
            Some("a levels request must not carry expand (use /v1/expand)")
        }
        "/v1/expand" if request.levels.is_none() || request.expand.is_none() => {
            Some("an expand request must carry both levels and expand")
        }
        _ => None,
    };
    match shape_error {
        Some(msg) => Err(HttpResponse::error(400, "bad_request", msg)),
        None => Ok(request),
    }
}

/// Resolve an export target: a 32-hex-digit fingerprint, or a registered
/// schema name.
fn resolve_export_target(
    service: &SummaryService,
    target: &str,
) -> Result<SchemaFingerprint, HttpResponse> {
    if let Some(fp) = SchemaFingerprint::from_hex(target) {
        return Ok(fp);
    }
    service.fingerprint_of(target).ok_or_else(|| {
        HttpResponse::error(
            404,
            "unknown_schema",
            format!("unknown schema or fingerprint '{target}'"),
        )
    })
}

fn query_params(query: Option<&str>) -> Vec<(String, String)> {
    query
        .unwrap_or("")
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (p.to_string(), String::new()),
        })
        .collect()
}

fn export(ctx: &RouteContext<'_>, req: &HttpRequest) -> HttpResponse {
    let target = req.path().trim_start_matches("/v1/export/");
    if target.is_empty() || target.contains('/') {
        return HttpResponse::error(404, "not_found", "export target missing");
    }
    let fingerprint = match resolve_export_target(ctx.service, target) {
        Ok(fp) => fp,
        Err(resp) => return resp,
    };
    let params = query_params(req.query());
    let get = |name: &str| {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let algorithm: Algorithm = match get("algorithm").unwrap_or("balance").parse() {
        Ok(a) => a,
        Err(e) => return HttpResponse::error(400, "bad_request", e),
    };
    let k: usize = match get("k").unwrap_or("5").parse() {
        Ok(k) => k,
        Err(_) => return HttpResponse::error(400, "bad_request", "k must be a positive integer"),
    };
    let format = get("format").unwrap_or("json");
    let export = match ctx.service.export_summary(fingerprint, algorithm, k) {
        Ok(e) => e,
        Err(e) => {
            return HttpResponse::error(status_of(&e), service_error_kind(&e), format!("{e}"))
        }
    };
    match format {
        "json" => HttpResponse::json(200, export.to_json()),
        "markdown" | "md" => {
            let mut resp = HttpResponse::text(200, export.to_markdown());
            resp.content_type = "text/markdown; charset=utf-8";
            resp
        }
        other => HttpResponse::error(400, "bad_request", format!("unknown format '{other}'")),
    }
}

fn admin_cache(ctx: &RouteContext<'_>) -> HttpResponse {
    #[derive(serde::Serialize)]
    struct AdminCacheView {
        stats: crate::service::CacheStats,
        entries: Vec<crate::service::CacheEntryInfo>,
    }
    let view = AdminCacheView {
        stats: ctx.service.cache_stats(),
        entries: ctx.service.cached_entries(),
    };
    HttpResponse::json(
        200,
        serde_json::to_string(&view).expect("cache view serializes"),
    )
}

fn admin_evict(ctx: &RouteContext<'_>, body: &[u8]) -> HttpResponse {
    #[derive(serde::Deserialize)]
    struct EvictRequest {
        fingerprint: Option<String>,
        schema: Option<String>,
    }
    let request: EvictRequest = match decode_body(body, "body is not an evict request") {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let fingerprint = match (&request.fingerprint, &request.schema) {
        (Some(hex), _) => match SchemaFingerprint::from_hex(hex) {
            Some(fp) => fp,
            None => {
                return HttpResponse::error(400, "bad_request", "fingerprint is not 32 hex digits")
            }
        },
        (None, Some(name)) => match ctx.service.fingerprint_of(name) {
            Some(fp) => fp,
            None => {
                return HttpResponse::error(
                    404,
                    "unknown_schema",
                    format!("unknown schema '{name}'"),
                )
            }
        },
        (None, None) => {
            return HttpResponse::error(400, "bad_request", "name a fingerprint or a schema")
        }
    };
    let evicted = ctx.service.evict_fingerprint(fingerprint);
    #[derive(serde::Serialize)]
    struct EvictReply {
        fingerprint: String,
        evicted: usize,
    }
    let reply = EvictReply {
        fingerprint: fingerprint.to_hex(),
        evicted,
    };
    HttpResponse::json(
        200,
        serde_json::to_string(&reply).expect("evict reply serializes"),
    )
}

/// Resolve a refresh operand: a 32-hex-digit fingerprint, or a
/// registered schema name.
fn resolve_refresh_target(
    service: &SummaryService,
    target: &str,
    role: &str,
) -> Result<SchemaFingerprint, HttpResponse> {
    if let Some(fp) = SchemaFingerprint::from_hex(target) {
        return Ok(fp);
    }
    service.fingerprint_of(target).ok_or_else(|| {
        HttpResponse::error(
            404,
            "unknown_schema",
            format!("unknown {role} schema or fingerprint '{target}'"),
        )
    })
}

fn admin_refresh(ctx: &RouteContext<'_>, body: &[u8]) -> HttpResponse {
    #[derive(serde::Deserialize)]
    struct RefreshRequest {
        old: Option<String>,
        new: Option<String>,
    }
    let request: RefreshRequest = match decode_body(body, "body is not a refresh request") {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let (Some(old), Some(new)) = (&request.old, &request.new) else {
        return HttpResponse::error(400, "bad_request", "name both old and new schemas");
    };
    let old_fp = match resolve_refresh_target(ctx.service, old, "old") {
        Ok(fp) => fp,
        Err(resp) => return resp,
    };
    let new_fp = match resolve_refresh_target(ctx.service, new, "new") {
        Ok(fp) => fp,
        Err(resp) => return resp,
    };
    let stats_before = ctx.service.cache_stats();
    let delta = match ctx.service.refresh_between(old_fp, new_fp) {
        Ok(d) => d,
        Err(e) => {
            return HttpResponse::error(status_of(&e), service_error_kind(&e), format!("{e}"))
        }
    };
    let stats_after = ctx.service.cache_stats();
    #[derive(serde::Serialize)]
    struct RefreshReply {
        old: String,
        new: String,
        empty: bool,
        /// The diff classification (`rescale`, `edge_touch`,
        /// `additive_structural`, `destructive`) — what the warm path
        /// was *asked* to do; `warm` says whether it succeeded.
        class: String,
        warm: bool,
        rows_recomputed: u64,
    }
    let reply = RefreshReply {
        old: old_fp.to_hex(),
        new: new_fp.to_hex(),
        empty: delta.is_empty(),
        class: delta.class.as_str().to_string(),
        warm: stats_after.delta_refreshes > stats_before.delta_refreshes,
        rows_recomputed: stats_after.delta_rows_recomputed - stats_before.delta_rows_recomputed,
    };
    HttpResponse::json(
        200,
        serde_json::to_string(&reply).expect("refresh reply serializes"),
    )
}

/// Route one parsed request.
pub(crate) fn route(ctx: &RouteContext<'_>, req: &HttpRequest) -> HttpResponse {
    let path = req.path();
    match (req.method.as_str(), path) {
        ("POST", "/v1/summary" | "/v1/levels" | "/v1/expand") => {
            match summary_body(path, &req.body) {
                Ok(request) => run_pooled(ctx, request),
                Err(resp) => resp,
            }
        }
        ("GET", "/healthz") => HttpResponse::text(
            200,
            format!(
                "ok role=node peers={}\n",
                ctx.fanout.map_or(0, Fanout::peer_count)
            ),
        ),
        ("GET", "/metrics") => HttpResponse::text(
            200,
            metrics::render(
                &ctx.service.cache_stats(),
                &ctx.service.catalog_stats(),
                &ctx.http_stats,
            ),
        ),
        ("GET", p) if p.starts_with("/v1/export/") => export(ctx, req),
        ("GET", "/admin/cache") => admin_cache(ctx),
        ("POST", "/admin/evict") => {
            let response = admin_evict(ctx, &req.body);
            propagate(ctx, req, &response);
            response
        }
        ("POST", "/admin/refresh") => {
            let response = admin_refresh(ctx, &req.body);
            propagate(ctx, req, &response);
            response
        }
        // Known paths with the wrong method are 405 with an `Allow`
        // header naming the method that would work; everything else 404.
        (_, "/v1/summary" | "/v1/levels" | "/v1/expand" | "/admin/evict" | "/admin/refresh") => {
            method_not_allowed(req, "POST")
        }
        (_, "/healthz" | "/metrics" | "/admin/cache") => method_not_allowed(req, "GET"),
        (m, p) if p.starts_with("/v1/export/") && m != "GET" => method_not_allowed(req, "GET"),
        _ => HttpResponse::error(404, "not_found", format!("no route for {path}")),
    }
}

/// A `405` naming the method the path supports, per RFC 9110 §10.2.1.
fn method_not_allowed(req: &HttpRequest, allow: &'static str) -> HttpResponse {
    let mut resp = HttpResponse::error(
        405,
        "method_not_allowed",
        format!("{} {}", req.method, req.path()),
    );
    resp.allow = Some(allow);
    resp
}
