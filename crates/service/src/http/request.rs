//! Incremental HTTP/1.1 request parsing with strict limits.
//!
//! The parser consumes a growing byte buffer (whatever the connection has
//! read so far) and either produces a complete request plus the number of
//! bytes it consumed, asks for more bytes, or fails with a typed error
//! that maps onto a status code: `400` for malformed framing, `431` when
//! the head exceeds its byte limit, `413` when the body exceeds its, and
//! `505` for HTTP versions other than 1.0/1.1.
//!
//! Bodies are framed by `Content-Length` or `Transfer-Encoding: chunked`
//! (chunked wins when both appear, per RFC 9112 §6.3); a request with
//! neither has no body. Header names are lower-cased at parse time so
//! lookups are case-insensitive.

/// Hard cap on the request head (request line + headers), bytes.
pub(crate) const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Hard cap on a decoded request body, bytes.
pub(crate) const MAX_BODY_BYTES: usize = 1024 * 1024;

/// HTTP version of a parsed request (only 1.0 and 1.1 are admitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HttpVersion {
    Http10,
    Http11,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub(crate) struct HttpRequest {
    pub method: String,
    /// The request target as sent (path plus optional `?query`).
    pub target: String,
    pub version: HttpVersion,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The target's raw query string (after `?`), when present.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection stays open after this exchange: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection").map(str::to_ascii_lowercase);
        match self.version {
            HttpVersion::Http11 => !matches!(connection.as_deref(), Some(c) if c.contains("close")),
            HttpVersion::Http10 => {
                matches!(connection.as_deref(), Some(c) if c.contains("keep-alive"))
            }
        }
    }
}

/// Why a request could not be parsed (terminal: the connection closes
/// after the error response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParseError {
    /// Unintelligible framing → `400 Bad Request`.
    Malformed(&'static str),
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431 Request Header Fields Too
    /// Large`.
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] → `413 Content Too Large`.
    BodyTooLarge,
    /// Not HTTP/1.0 or HTTP/1.1 → `505 HTTP Version Not Supported`.
    UnsupportedVersion,
}

/// One parse attempt over the connection's buffered bytes.
#[derive(Debug)]
pub(crate) enum ParseOutcome {
    /// No complete request yet; read more bytes and retry.
    Incomplete,
    /// A complete request consuming the first `usize` bytes of the buffer.
    Complete(Box<HttpRequest>, usize),
    /// Unrecoverable; respond with the mapped status and close.
    Failed(ParseError),
}

/// Locate the end of the head: the first blank line, tolerating both
/// `\r\n\r\n` and bare `\n\n`. Returns `(head_end, body_start)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        // A '\n' terminating an empty line ends the head.
        let line_start = match buf[..i].iter().rposition(|&b| b == b'\n') {
            Some(prev) => prev + 1,
            None => 0,
        };
        let line = &buf[line_start..i];
        if line.is_empty() || line == b"\r" {
            return Some((line_start, i + 1));
        }
    }
    None
}

/// Parse the earliest complete request out of `buf`.
pub(crate) fn parse_request(buf: &[u8]) -> ParseOutcome {
    let Some((head_end, body_start)) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD_BYTES {
            ParseOutcome::Failed(ParseError::HeadTooLarge)
        } else {
            ParseOutcome::Incomplete
        };
    };
    if body_start > MAX_HEAD_BYTES {
        return ParseOutcome::Failed(ParseError::HeadTooLarge);
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return ParseOutcome::Failed(ParseError::Malformed("head is not UTF-8"));
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let Some(request_line) = lines.next() else {
        return ParseOutcome::Failed(ParseError::Malformed("empty head"));
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Failed(ParseError::Malformed("bad request line"));
    };
    if parts.next().is_some() {
        return ParseOutcome::Failed(ParseError::Malformed("bad request line"));
    }
    let version = match version {
        "HTTP/1.1" => HttpVersion::Http11,
        "HTTP/1.0" => HttpVersion::Http10,
        v if v.starts_with("HTTP/") => return ParseOutcome::Failed(ParseError::UnsupportedVersion),
        _ => return ParseOutcome::Failed(ParseError::Malformed("bad protocol token")),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ParseOutcome::Failed(ParseError::Malformed("bad method token"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Failed(ParseError::Malformed("header line without a colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return ParseOutcome::Failed(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        version,
        headers,
        body: Vec::new(),
    };

    let chunked = request
        .header("transfer-encoding")
        .is_some_and(|te| te.to_ascii_lowercase().contains("chunked"));
    if chunked {
        return match decode_chunked(&buf[body_start..]) {
            ChunkedOutcome::Incomplete => ParseOutcome::Incomplete,
            ChunkedOutcome::Failed(e) => ParseOutcome::Failed(e),
            ChunkedOutcome::Complete(body, used) => {
                let mut request = request;
                request.body = body;
                ParseOutcome::Complete(Box::new(request), body_start + used)
            }
        };
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ParseOutcome::Failed(ParseError::Malformed("bad content-length")),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return ParseOutcome::Failed(ParseError::BodyTooLarge);
    }
    if buf.len() < body_start + content_length {
        return ParseOutcome::Incomplete;
    }
    let mut request = request;
    request.body = buf[body_start..body_start + content_length].to_vec();
    ParseOutcome::Complete(Box::new(request), body_start + content_length)
}

enum ChunkedOutcome {
    Incomplete,
    Complete(Vec<u8>, usize),
    Failed(ParseError),
}

/// Decode a chunked body from `buf`: size lines in hex (extensions after
/// `;` ignored), data chunks, a terminating zero chunk, then trailers up
/// to a blank line. Returns the decoded body and bytes consumed.
fn decode_chunked(buf: &[u8]) -> ChunkedOutcome {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(line_end) = buf[pos..].iter().position(|&b| b == b'\n').map(|i| pos + i) else {
            return ChunkedOutcome::Incomplete;
        };
        let Ok(line) = std::str::from_utf8(&buf[pos..line_end]) else {
            return ChunkedOutcome::Failed(ParseError::Malformed("chunk size is not UTF-8"));
        };
        let line = line.trim_end_matches('\r');
        let size_token = line.split(';').next().unwrap_or("").trim();
        let Ok(size) = usize::from_str_radix(size_token, 16) else {
            return ChunkedOutcome::Failed(ParseError::Malformed("bad chunk size"));
        };
        pos = line_end + 1;
        if size == 0 {
            // Trailers: header lines until a blank line.
            loop {
                let Some(t_end) = buf[pos..].iter().position(|&b| b == b'\n').map(|i| pos + i)
                else {
                    return ChunkedOutcome::Incomplete;
                };
                let trailer = &buf[pos..t_end];
                let blank = trailer.is_empty() || trailer == b"\r";
                pos = t_end + 1;
                if blank {
                    return ChunkedOutcome::Complete(body, pos);
                }
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return ChunkedOutcome::Failed(ParseError::BodyTooLarge);
        }
        if buf.len() < pos + size {
            return ChunkedOutcome::Incomplete;
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        pos += size;
        // The CRLF after the chunk data.
        if buf.len() < pos + 1 {
            return ChunkedOutcome::Incomplete;
        }
        if buf[pos] == b'\r' {
            pos += 1;
            if buf.len() < pos + 1 {
                return ChunkedOutcome::Incomplete;
            }
        }
        if buf[pos] != b'\n' {
            return ChunkedOutcome::Failed(ParseError::Malformed(
                "chunk data not newline-terminated",
            ));
        }
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (HttpRequest, usize) {
        match parse_request(buf) {
            ParseOutcome::Complete(r, n) => (*r, n),
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (r, n) = complete(raw);
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/healthz");
        assert_eq!(r.query(), None);
        assert_eq!(r.version, HttpVersion::Http11);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.keep_alive());
        assert_eq!(n, raw.len());
    }

    #[test]
    fn parses_query_and_connection_close() {
        let (r, _) =
            complete(b"GET /v1/export/ab?k=3&format=md HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(r.path(), "/v1/export/ab");
        assert_eq!(r.query(), Some("k=3&format=md"));
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let (r, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive());
        let (r, _) = complete(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(r.keep_alive());
    }

    #[test]
    fn content_length_body_waits_for_all_bytes() {
        let head = b"POST /v1/summary HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
        let mut buf = head.to_vec();
        buf.extend_from_slice(b"12");
        assert!(matches!(parse_request(&buf), ParseOutcome::Incomplete));
        buf.extend_from_slice(b"345");
        let (r, n) = complete(&buf);
        assert_eq!(r.body, b"12345");
        assert_eq!(n, buf.len());
    }

    #[test]
    fn pipelined_requests_consume_only_the_first() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r, n) = complete(two);
        assert_eq!(r.path(), "/a");
        let (r2, _) = complete(&two[n..]);
        assert_eq!(r2.path(), "/b");
    }

    #[test]
    fn chunked_body_decodes() {
        let raw = b"POST /v1/summary HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (r, n) = complete(raw);
        assert_eq!(r.body, b"Wikipedia");
        assert_eq!(n, raw.len());
    }

    #[test]
    fn chunked_body_incomplete_until_terminator() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n";
        assert!(matches!(parse_request(raw), ParseOutcome::Incomplete));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(matches!(
            parse_request(&buf),
            ParseOutcome::Failed(ParseError::HeadTooLarge)
        ));
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request(raw.as_bytes()),
            ParseOutcome::Failed(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            &b"NOT-A-REQUEST\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..],
            &b"get / HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad header line\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    parse_request(raw),
                    ParseOutcome::Failed(ParseError::Malformed(_))
                ),
                "{}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn unsupported_version_is_505() {
        assert!(matches!(
            parse_request(b"GET / HTTP/2.0\r\n\r\n"),
            ParseOutcome::Failed(ParseError::UnsupportedVersion)
        ));
    }
}
