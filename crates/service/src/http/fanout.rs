//! Cross-node invalidation propagation: admin mutations accepted by any
//! node are re-broadcast to its configured peers.
//!
//! A node started with `--peer` addresses forwards every *locally
//! initiated* `POST /admin/evict` and `POST /admin/refresh` to each
//! peer, verbatim, after applying it locally. Forwarded copies carry the
//! [`FANOUT_HEADER`] marker; a node that receives a marked request
//! applies it locally and does **not** re-broadcast, so a fully meshed
//! peer set converges in one hop and cannot loop.
//!
//! Application is idempotent by construction — evicting an
//! already-evicted fingerprint drops zero entries, refreshing an
//! already-refreshed pair is a no-op delta — so a peer receiving the
//! same broadcast twice (client retry through the router, overlapping
//! meshes) converges to the same state. A peer answering `404` counts
//! as applied: under rendezvous routing most peers never registered the
//! schema being invalidated, and "nothing to drop" is the converged
//! state, not a failure.

use crate::cluster::client::NodeClient;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Marker header on forwarded admin requests (compared lowercased, as
/// the request parser stores header names).
pub(crate) const FANOUT_HEADER: &str = "x-schema-summary-fanout";

/// The peer broadcaster owned by a node's HTTP server.
pub(crate) struct Fanout {
    peers: Vec<String>,
    client: NodeClient,
    sent: AtomicU64,
    failed: AtomicU64,
}

impl Fanout {
    /// Build a broadcaster over `peers` with a per-peer request budget.
    pub fn new(peers: Vec<String>, timeout: Duration) -> Self {
        Fanout {
            peers,
            client: NodeClient::new(timeout, timeout),
            sent: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Number of configured peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Broadcasts delivered (2xx or 404 from the peer).
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Broadcasts that failed (transport error or a non-applied status).
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Re-send one admin request to every peer, marked so receivers do
    /// not broadcast again. Best-effort: failures are counted (and
    /// visible in `/metrics`) but do not fail the local request — the
    /// local application already succeeded, and the peer's own journal
    /// and caches converge on its next restart or refresh.
    pub fn broadcast(&self, target: &str, body: &[u8]) {
        for peer in &self.peers {
            let delivered = self
                .client
                .request(
                    peer,
                    "POST",
                    target,
                    Some("application/json"),
                    &[("X-Schema-Summary-Fanout", "1")],
                    body,
                )
                .map(|resp| resp.status < 300 || resp.status == 404)
                .unwrap_or(false);
            if delivered {
                self.sent.fetch_add(1, Ordering::Relaxed);
            } else {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
