//! Condensed, machine-readable schema-summary exports.
//!
//! An export is the documentation-shaped projection of a flat summary:
//! the selected elements with their root label paths, importance scores,
//! and cardinalities, plus the aggregate importance/coverage of the
//! summary and enough provenance (schema name, fingerprint, algorithm,
//! `k`) to reproduce it. The same structure is rendered as JSON (for
//! pipelines) or markdown (for humans), and is served both by the
//! `summary export` CLI subcommand and by `GET /v1/export/:fingerprint`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One selected element of an exported summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportElement {
    /// Root label path of the element (e.g. `site/people/person`).
    pub label: String,
    /// The element's importance score (Definition 2).
    pub importance: f64,
    /// The element's cardinality annotation.
    pub cardinality: f64,
}

/// A condensed schema-summary document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryExport {
    /// Registered name of the schema, when it has one.
    pub schema: Option<String>,
    /// Content fingerprint of the summarized schema, as hex.
    pub fingerprint: String,
    /// Algorithm that produced the selection.
    pub algorithm: String,
    /// Requested summary size.
    pub k: usize,
    /// Total elements in the underlying schema.
    pub schema_elements: usize,
    /// Summary importance `R_SS` (Definition 3).
    pub importance: f64,
    /// Summary coverage `C_SS` (Definition 4).
    pub coverage: f64,
    /// The selected elements, in algorithm order.
    pub elements: Vec<ExportElement>,
}

impl SummaryExport {
    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("export serializes")
    }

    /// Render as a markdown document (header, provenance list, element
    /// table).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let title = self.schema.as_deref().unwrap_or(&self.fingerprint);
        let _ = writeln!(out, "# Schema summary: {title}");
        let _ = writeln!(out);
        let _ = writeln!(out, "- fingerprint: `{}`", self.fingerprint);
        let _ = writeln!(out, "- algorithm: {}", self.algorithm);
        let _ = writeln!(
            out,
            "- k: {} (of {} elements)",
            self.k, self.schema_elements
        );
        let _ = writeln!(out, "- importance (R_SS): {:.6}", self.importance);
        let _ = writeln!(out, "- coverage (C_SS): {:.6}", self.coverage);
        let _ = writeln!(out);
        let _ = writeln!(out, "| # | element | importance | cardinality |");
        let _ = writeln!(out, "|--:|---------|-----------:|------------:|");
        for (i, e) in self.elements.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {} | {} | {:.6} | {} |",
                i + 1,
                e.label,
                e.importance,
                e.cardinality
            );
        }
        out
    }
}
