//! A fixed worker thread pool with a bounded job queue.
//!
//! The pool is the server's admission controller: jobs beyond the queue
//! bound are rejected immediately ([`SubmitError::Full`]) instead of
//! growing an unbounded backlog — the caller turns that into a structured
//! `overloaded` reply, which is the backpressure discipline production
//! result caches use. Shutdown is graceful: no new jobs are admitted,
//! queued jobs drain, and every worker is joined.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; shed load instead of buffering.
    Full,
    /// The pool is shutting down and admits no new work.
    ShuttingDown,
}

struct State {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a job arrives or shutdown begins.
    wake: Condvar,
    queue_capacity: usize,
}

/// Fixed-size thread pool; see the module docs for the admission contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads sharing one queue bounded at
    /// `queue_capacity` pending jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            wake: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit a job, or reject it without blocking: [`SubmitError::Full`]
    /// when the queue is at capacity, [`SubmitError::ShuttingDown`] after
    /// [`WorkerPool::shutdown`] began.
    pub fn try_execute(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool poisoned");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_capacity {
            return Err(SubmitError::Full);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Number of jobs waiting for a worker (excludes jobs being run).
    #[cfg(test)]
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool poisoned").queue.len()
    }

    /// Stop admitting jobs, drain everything already queued, and join all
    /// workers. Idempotent: later calls return immediately.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.shutting_down = true;
        }
        self.shared.wake.notify_all();
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("pool poisoned").drain(..).collect();
        for worker in handles {
            worker.join().expect("pool worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared.wake.wait(state).expect("pool poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.try_execute(move || tx.send(i).unwrap()).unwrap();
        }
        let mut seen: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn full_queue_sheds_instead_of_buffering() {
        // One worker blocked on a gate; capacity 2 admits exactly two more
        // jobs, then sheds.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            entered_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        entered_rx.recv().unwrap(); // worker is now busy, queue empty
        assert!(pool.try_execute(|| {}).is_ok());
        assert!(pool.try_execute(|| {}).is_ok());
        assert_eq!(pool.try_execute(|| {}), Err(SubmitError::Full));
        assert_eq!(pool.queued(), 2);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 16);
        let ran = Arc::new(AtomicUsize::new(0));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        {
            let ran = Arc::clone(&ran);
            pool.try_execute(move || {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        entered_rx.recv().unwrap();
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            pool.try_execute(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        gate_tx.send(()).unwrap();
        pool.shutdown();
        // Every admitted job ran to completion before shutdown returned.
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }
}
