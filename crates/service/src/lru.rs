//! A sharded least-recently-used map for cached summary results.
//!
//! The result cache is read-mostly but every hit mutates recency, so a
//! single global lock would serialize all readers. Keys are therefore
//! hashed onto a fixed set of shards, each an independent LRU list behind
//! its own mutex; contention is limited to requests that collide on a
//! shard. Each shard keeps an intrusive doubly-linked list over a slab so
//! get/insert are O(1).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    /// The live entry, or `None` for a slot on the free list. Eviction and
    /// `retain` take the entry out immediately — a freed slot must not keep
    /// its old key/value alive until reuse (a cached `Arc<SummaryResult>`
    /// could otherwise stay resident indefinitely).
    entry: Option<(K, V)>,
    prev: usize,
    next: usize,
}

impl<K, V> Slot<K, V> {
    fn value(&self) -> &V {
        &self.entry.as_ref().expect("live slot has an entry").1
    }
}

/// One LRU shard: a capacity-bounded map with recency eviction.
struct Shard<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value().clone())
    }

    /// Unlink slot `i`, drop its entry, and return it to the free list.
    fn release(&mut self, i: usize) {
        self.unlink(i);
        let (key, _value) = self.slots[i].entry.take().expect("releasing a live slot");
        self.map.remove(&key);
        self.free.push(i);
    }

    /// Insert `key`, returning how many entries were evicted (0 or 1).
    /// Re-inserting an existing key refreshes its value and recency.
    fn insert(&mut self, key: K, value: V) -> usize {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].entry = Some((key, value));
            self.unlink(i);
            self.push_front(i);
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            self.release(lru);
            evicted = 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].entry = Some((key.clone(), value));
                i
            }
            None => {
                self.slots.push(Slot {
                    entry: Some((key.clone(), value)),
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Drop every entry whose key fails `keep`, returning how many were
    /// removed.
    fn retain(&mut self, keep: impl Fn(&K) -> bool) -> usize {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed.iter().copied() {
            self.release(i);
        }
        doomed.len()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Sharded LRU map: `get` and `insert` lock only the owning shard.
pub(crate) struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Create a cache with `capacity` total entries spread over `shards`
    /// locks. Per-shard capacity is rounded up, so the effective total may
    /// slightly exceed `capacity`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("lru shard poisoned").get(key)
    }

    /// Insert, returning the number of evicted entries.
    pub fn insert(&self, key: K, value: V) -> usize {
        self.shard(&key)
            .lock()
            .expect("lru shard poisoned")
            .insert(key, value)
    }

    /// Drop entries whose key fails `keep` across all shards; returns the
    /// number removed.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").retain(&keep))
            .sum()
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(8, 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.insert(1, 10), 0);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_value() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        c.insert(1, 10);
        assert_eq!(c.insert(1, 20), 0);
        assert_eq!(c.get(&1), Some(20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        assert_eq!(c.insert(3, 30), 1);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn retain_drops_matching_entries() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(16, 4);
        for i in 0..10 {
            c.insert(i, i);
        }
        let removed = c.retain(|&k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&4), Some(4));
    }

    #[test]
    fn eviction_drops_the_value_immediately() {
        use std::sync::Arc;
        let c: ShardedLru<u32, Arc<String>> = ShardedLru::new(1, 1);
        let first = Arc::new("first".to_string());
        c.insert(1, Arc::clone(&first));
        assert_eq!(Arc::strong_count(&first), 2);
        // Capacity 1: inserting a second key evicts the first. The slot is
        // freed but not yet reused — the evicted Arc must still be dropped.
        assert_eq!(c.insert(2, Arc::new("second".to_string())), 1);
        assert_eq!(
            Arc::strong_count(&first),
            1,
            "evicted value retained by a free slot"
        );
    }

    #[test]
    fn retain_drops_the_values_immediately() {
        use std::sync::Arc;
        let c: ShardedLru<u32, Arc<String>> = ShardedLru::new(8, 2);
        let values: Vec<Arc<String>> = (0..6).map(|i| Arc::new(format!("v{i}"))).collect();
        for (i, v) in values.iter().enumerate() {
            c.insert(i as u32, Arc::clone(v));
        }
        let removed = c.retain(|&k| k < 2);
        assert_eq!(removed, 4);
        for (i, v) in values.iter().enumerate() {
            let expected = if i < 2 { 2 } else { 1 };
            assert_eq!(
                Arc::strong_count(v),
                expected,
                "key {i}: retained-out value must be dropped"
            );
        }
    }

    #[test]
    fn eviction_then_reuse_of_slots() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        for i in 0..50 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 3);
        for i in 47..50 {
            assert_eq!(c.get(&i), Some(i * 2));
        }
    }
}
