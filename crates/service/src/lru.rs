//! A sharded least-recently-used map for cached summary results, with
//! cost-weighted eviction.
//!
//! The result cache is read-mostly but every hit mutates recency, so a
//! single global lock would serialize all readers. Keys are therefore
//! hashed onto a fixed set of shards, each an independent LRU list behind
//! its own mutex; contention is limited to requests that collide on a
//! shard. Each shard keeps an intrusive doubly-linked list over a slab so
//! get/insert are O(1).
//!
//! Every entry carries its recomputation cost (microseconds of wall time
//! the producer spent computing it). Under capacity pressure the victim is
//! not blindly the list tail: among the [`EVICTION_WINDOW`] least-recently
//! used entries, the cheapest one is displaced, so a cold-but-expensive
//! all-pairs matrix result outlives a cold-and-trivial one. With equal
//! costs this degenerates to exact LRU (ties keep the colder entry).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// How many of the least-recently-used entries compete for eviction; the
/// cheapest of the window is displaced. The most-recently-used entry is
/// never victimized (it was just inserted or hit).
const EVICTION_WINDOW: usize = 4;

struct Slot<K, V> {
    /// The live entry, or `None` for a slot on the free list. Eviction and
    /// `retain` take the entry out immediately — a freed slot must not keep
    /// its old key/value alive until reuse (a cached `Arc<SummaryResult>`
    /// could otherwise stay resident indefinitely).
    entry: Option<(K, V)>,
    /// Recomputation cost of the entry, in producer-reported microseconds.
    cost: u64,
    prev: usize,
    next: usize,
}

impl<K, V> Slot<K, V> {
    fn value(&self) -> &V {
        &self.entry.as_ref().expect("live slot has an entry").1
    }
}

/// One LRU shard: a capacity-bounded map with recency eviction.
struct Shard<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value().clone())
    }

    /// Unlink slot `i`, return its entry, and put the slot on the free
    /// list.
    fn release(&mut self, i: usize) -> (K, V) {
        self.unlink(i);
        let (key, value) = self.slots[i].entry.take().expect("releasing a live slot");
        self.map.remove(&key);
        self.free.push(i);
        (key, value)
    }

    /// The cheapest entry among the [`EVICTION_WINDOW`] least-recently
    /// used ones; ties keep the colder entry, and the most-recently-used
    /// entry only loses when it is the sole entry.
    fn victim(&self) -> usize {
        let mut best = self.tail;
        let mut best_cost = self.slots[best].cost;
        let mut cur = self.tail;
        for _ in 1..EVICTION_WINDOW {
            if cur == self.head {
                break;
            }
            cur = self.slots[cur].prev;
            if cur == self.head {
                break;
            }
            if self.slots[cur].cost < best_cost {
                best = cur;
                best_cost = self.slots[cur].cost;
            }
        }
        best
    }

    /// Insert `key` with its recomputation cost, returning the displaced
    /// entry (and its cost) if capacity forced one out. Re-inserting an
    /// existing key refreshes its value, cost, and recency.
    fn insert(&mut self, key: K, value: V, cost: u64) -> Option<(K, V, u64)> {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].entry = Some((key, value));
            self.slots[i].cost = cost;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.victim();
            let victim_cost = self.slots[victim].cost;
            let (k, v) = self.release(victim);
            evicted = Some((k, v, victim_cost));
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].entry = Some((key.clone(), value));
                self.slots[i].cost = cost;
                i
            }
            None => {
                self.slots.push(Slot {
                    entry: Some((key.clone(), value)),
                    cost,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Drop every entry whose key fails `keep`, returning how many were
    /// removed.
    fn retain(&mut self, keep: impl Fn(&K) -> bool) -> usize {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed.iter().copied() {
            let _ = self.release(i);
        }
        doomed.len()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn total_cost(&self) -> u64 {
        self.map.values().map(|&i| self.slots[i].cost).sum()
    }
}

/// Sharded LRU map: `get` and `insert` lock only the owning shard.
pub(crate) struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Create a cache with `capacity` total entries spread over `shards`
    /// locks. Per-shard capacity is rounded up, so the effective total may
    /// slightly exceed `capacity`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("lru shard poisoned").get(key)
    }

    /// Insert an entry with its recomputation cost (microseconds),
    /// returning the displaced entry and its cost if capacity forced an
    /// eviction.
    pub fn insert(&self, key: K, value: V, cost: u64) -> Option<(K, V, u64)> {
        self.shard(&key)
            .lock()
            .expect("lru shard poisoned")
            .insert(key, value, cost)
    }

    /// Drop entries whose key fails `keep` across all shards; returns the
    /// number removed.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").retain(&keep))
            .sum()
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").len())
            .sum()
    }

    /// Per-shard entry counts, in shard order — the load-balance view a
    /// contention investigation starts from.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").len())
            .collect()
    }

    /// Snapshot every resident `(key, recomputation cost)` pair, in no
    /// particular order. Read-only: recency is untouched.
    pub fn entries(&self) -> Vec<(K, u64)> {
        self.shards
            .iter()
            .flat_map(|s| {
                let shard = s.lock().expect("lru shard poisoned");
                shard
                    .map
                    .iter()
                    .map(|(k, &i)| (k.clone(), shard.slots[i].cost))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Summed recomputation cost (microseconds) of every resident entry —
    /// what it would take to rebuild the cache from nothing.
    pub fn total_cost(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").total_cost())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(8, 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.insert(1, 10, 5), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_cost(), 5);
    }

    #[test]
    fn reinsert_refreshes_value_and_cost() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        c.insert(1, 10, 3);
        assert_eq!(c.insert(1, 20, 7), None);
        assert_eq!(c.get(&1), Some(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_cost(), 7);
    }

    #[test]
    fn equal_costs_evict_least_recently_used() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        assert_eq!(c.insert(3, 30, 1), Some((2, 20, 1)));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn cheap_entry_loses_to_a_colder_expensive_one() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        c.insert(1, 10, 100); // coldest, but expensive
        c.insert(2, 20, 1); // cheap
        c.insert(3, 30, 100); // most recent — never victimized
        assert_eq!(c.insert(4, 40, 100), Some((2, 20, 1)));
        assert_eq!(c.get(&1), Some(10), "expensive cold entry survives");
        assert_eq!(c.get(&2), None, "cheap entry was displaced");
        assert_eq!(c.total_cost(), 300);
    }

    #[test]
    fn most_recent_entry_survives_even_when_cheapest() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10, 50);
        c.insert(2, 20, 1); // MRU, cheapest — still protected
        assert_eq!(c.insert(3, 30, 50), Some((1, 10, 50)));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn retain_drops_matching_entries() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(16, 4);
        for i in 0..10 {
            c.insert(i, i, 1);
        }
        let removed = c.retain(|&k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&4), Some(4));
    }

    #[test]
    fn eviction_drops_the_value_immediately() {
        use std::sync::Arc;
        let c: ShardedLru<u32, Arc<String>> = ShardedLru::new(1, 1);
        let first = Arc::new("first".to_string());
        c.insert(1, Arc::clone(&first), 1);
        assert_eq!(Arc::strong_count(&first), 2);
        // Capacity 1: inserting a second key evicts the first. The slot is
        // freed but not yet reused — once the returned entry is dropped the
        // evicted Arc must be gone.
        let evicted = c.insert(2, Arc::new("second".to_string()), 1);
        assert!(matches!(evicted, Some((1, _, 1))));
        drop(evicted);
        assert_eq!(
            Arc::strong_count(&first),
            1,
            "evicted value retained by a free slot"
        );
    }

    #[test]
    fn retain_drops_the_values_immediately() {
        use std::sync::Arc;
        let c: ShardedLru<u32, Arc<String>> = ShardedLru::new(8, 2);
        let values: Vec<Arc<String>> = (0..6).map(|i| Arc::new(format!("v{i}"))).collect();
        for (i, v) in values.iter().enumerate() {
            c.insert(i as u32, Arc::clone(v), 1);
        }
        let removed = c.retain(|&k| k < 2);
        assert_eq!(removed, 4);
        for (i, v) in values.iter().enumerate() {
            let expected = if i < 2 { 2 } else { 1 };
            assert_eq!(
                Arc::strong_count(v),
                expected,
                "key {i}: retained-out value must be dropped"
            );
        }
    }

    #[test]
    fn eviction_then_reuse_of_slots() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        for i in 0..50 {
            c.insert(i, i * 2, 1);
        }
        assert_eq!(c.len(), 3);
        for i in 47..50 {
            assert_eq!(c.get(&i), Some(i * 2));
        }
    }
}
