//! The schema catalog: annotated graphs registered under their content
//! fingerprint, each carrying lazily memoized algorithm artifacts.
//!
//! Registering the same annotated schema twice (even from different
//! processes or rebuilt object graphs) lands on the same
//! [`SchemaFingerprint`] and therefore shares one [`CatalogEntry`] — and
//! with it one importance fixpoint, one all-pairs matrix computation, and
//! one dominance set per algorithm configuration, no matter how many
//! concurrent requests arrive.
//!
//! The registry itself is sharded: fingerprints hash onto a fixed set of
//! independent `RwLock`ed maps, so registrations and lookups of different
//! schemas never contend on one lock. [`SchemaCatalog::shard_lens`]
//! exposes the per-shard entry counts so load balance is observable.
//!
//! When the owning store has a disk tier, the all-pairs matrices — the
//! most expensive artifact — are spilled there in their bit-exact binary
//! form and rehydrated on the next process's first request instead of
//! recomputed. [`SchemaCatalog::compute_counters`] tells the two apart.

use crate::disk::{DiskTier, KIND_MATRICES};
use schema_summary_algo::importance::{compute_importance, compute_importance_rebased};
use schema_summary_algo::{DominanceSet, ImportanceResult, PairMatrices, SummarizerConfig};
use schema_summary_core::{SchemaFingerprint, SchemaGraph, SchemaStats};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Default number of catalog shards (independent registry locks).
pub const DEFAULT_CATALOG_SHARDS: usize = 8;

/// How matrices were obtained, cumulatively: actually computed vs
/// rehydrated from the disk tier. Shared by every [`Artifacts`] of one
/// catalog.
#[derive(Default)]
pub(crate) struct ComputeCounters {
    matrices_computed: AtomicU64,
    matrices_rehydrated: AtomicU64,
    importance_seeded: AtomicU64,
    importance_iterations_saved: AtomicU64,
}

impl ComputeCounters {
    pub fn matrices_computed(&self) -> u64 {
        self.matrices_computed.load(Ordering::Relaxed)
    }

    pub fn matrices_rehydrated(&self) -> u64 {
        self.matrices_rehydrated.load(Ordering::Relaxed)
    }

    /// Importance fixpoints started from a previous version's vector
    /// instead of the cold cardinality init.
    pub fn importance_seeded(&self) -> u64 {
        self.importance_seeded.load(Ordering::Relaxed)
    }

    /// Cumulative iterations the seeded restarts stopped short of their
    /// cold baseline (the iteration count of the chain's original cold
    /// run, carried forward across versions).
    pub fn importance_iterations_saved(&self) -> u64 {
        self.importance_iterations_saved.load(Ordering::Relaxed)
    }
}

/// Canonical disk-tier key-meta for one schema's matrices under one
/// configuration.
fn matrices_meta(fingerprint: SchemaFingerprint, config: &SummarizerConfig) -> String {
    let options = serde_json::to_string(config).expect("config serializes");
    format!("mat|{}|{options}", fingerprint.to_hex())
}

/// A staged fixpoint restart: the previous version's importance result,
/// its statistics (for the cardinality rebase), and the chain's cold
/// baseline iteration count.
type ImportanceSeed = (Arc<ImportanceResult>, Arc<SchemaStats>, u64);

/// Heavy per-schema intermediates, computed at most once per
/// `(fingerprint, configuration)` and shared across requests via `Arc`.
///
/// All three artifacts are lazy: a service that only ever answers
/// `MaxImportance` requests never pays for the all-pairs matrices.
pub struct Artifacts {
    fingerprint: SchemaFingerprint,
    graph: Arc<SchemaGraph>,
    stats: Arc<SchemaStats>,
    config: SummarizerConfig,
    disk: Option<Arc<DiskTier>>,
    counters: Arc<ComputeCounters>,
    importance: OnceLock<Arc<ImportanceResult>>,
    /// A previous version's importance vector staged by the warm refresh
    /// path, consumed (at most once) by the first [`Artifacts::importance`]
    /// call: the fixpoint restarts from it instead of the cold cardinality
    /// init. Carries the previous version's statistics (for the
    /// per-element cardinality rebase) and the cold-baseline iteration
    /// count (see [`Artifacts::importance_baseline_iters`]).
    importance_seed: Mutex<Option<ImportanceSeed>>,
    /// Iterations a *cold* run of this schema's importance is known to
    /// take: the actual count when computed cold, or the baseline carried
    /// forward from the seeding version's chain when seeded. 0 until the
    /// importance has been forced.
    importance_baseline: AtomicU64,
    matrices: OnceLock<Arc<PairMatrices>>,
    /// Wall time the matrices took to compute, in microseconds (floored at
    /// 1 once computed, so 0 means "not computed yet"). This is the
    /// recomputation cost a cache eviction policy should weigh; a
    /// rehydrated matrix restores the cost its original computation
    /// reported.
    matrices_micros: AtomicU64,
    dominance: OnceLock<Arc<DominanceSet>>,
}

impl Artifacts {
    fn new(
        fingerprint: SchemaFingerprint,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
        config: SummarizerConfig,
        disk: Option<Arc<DiskTier>>,
        counters: Arc<ComputeCounters>,
    ) -> Self {
        Artifacts {
            fingerprint,
            graph,
            stats,
            config,
            disk,
            counters,
            importance: OnceLock::new(),
            importance_seed: Mutex::new(None),
            importance_baseline: AtomicU64::new(0),
            matrices: OnceLock::new(),
            matrices_micros: AtomicU64::new(0),
            dominance: OnceLock::new(),
        }
    }

    /// Importance scores (Formula 1), computed on first use.
    ///
    /// When the warm refresh path staged a previous version's vector via
    /// [`Artifacts::seed_importance`], the fixpoint restarts from it
    /// (rebased per element by its cardinality ratio, then rescaled to
    /// the new total mass) instead of the cold cardinality init — the
    /// paper's §3.3 maintenance restart. Seeded scores are
    /// **ε-close** to a cold run's, not bit-identical: both runs stop
    /// inside the same `ImportanceConfig::epsilon` convergence ball of
    /// the unique fixed point, but generally at different points in it
    /// (DESIGN.md §3.19). Mass is conserved exactly either way.
    pub fn importance(&self) -> &ImportanceResult {
        self.importance.get_or_init(|| {
            let seed = self
                .importance_seed
                .lock()
                .expect("importance seed poisoned")
                .take();
            match seed {
                Some((previous, previous_stats, baseline)) => {
                    let result = compute_importance_rebased(
                        &self.graph,
                        &self.stats,
                        previous.scores(),
                        &previous_stats,
                        &self.config.importance,
                    );
                    // The baseline anchors "iterations saved" to the
                    // chain's original cold run, so chained seeds don't
                    // compare against each other's already-short restarts.
                    let baseline = baseline.max(previous.iterations as u64);
                    self.importance_baseline.store(baseline, Ordering::Relaxed);
                    self.counters.importance_seeded.fetch_add(1, Ordering::Relaxed);
                    self.counters.importance_iterations_saved.fetch_add(
                        baseline.saturating_sub(result.iterations as u64),
                        Ordering::Relaxed,
                    );
                    Arc::new(result)
                }
                None => {
                    let result = compute_importance(&self.graph, &self.stats, &self.config.importance);
                    self.importance_baseline
                        .store(result.iterations as u64, Ordering::Relaxed);
                    Arc::new(result)
                }
            }
        })
    }

    /// The importance result if some caller already forced it — never
    /// computes. The delta-refresh path uses this to find seed vectors
    /// without paying for configurations nobody asked about.
    pub(crate) fn importance_if_computed(&self) -> Option<Arc<ImportanceResult>> {
        self.importance.get().cloned()
    }

    /// Iterations a cold importance run of this schema is known to take
    /// (see the field doc); 0 until the importance has been forced.
    pub(crate) fn importance_baseline_iters(&self) -> u64 {
        self.importance_baseline.load(Ordering::Relaxed)
    }

    /// Stage a previous version's importance result as the restart seed
    /// for this holder's (not yet forced) fixpoint. `previous_stats` are
    /// the seeding version's statistics, used to rebase the seed by each
    /// element's cardinality ratio; `baseline_iters` is the seeding
    /// chain's cold-run iteration count, carried forward for the
    /// `importance_iterations_saved` counter. A no-op once the importance
    /// has been computed (a concurrent request won the race).
    pub(crate) fn seed_importance(
        &self,
        previous: Arc<ImportanceResult>,
        previous_stats: Arc<SchemaStats>,
        baseline_iters: u64,
    ) {
        if self.importance.get().is_some() {
            return;
        }
        *self
            .importance_seed
            .lock()
            .expect("importance seed poisoned") = Some((previous, previous_stats, baseline_iters));
    }

    /// All-pairs affinity/coverage matrices (Formulas 2–3), obtained on
    /// first use: rehydrated bit-exactly from the disk tier when a
    /// previous process spilled them there, computed (and spilled)
    /// otherwise. The recomputation cost is recorded for
    /// [`Artifacts::matrices_cost_micros`] either way.
    pub fn matrices(&self) -> &PairMatrices {
        self.matrices.get_or_init(|| {
            if let Some(disk) = &self.disk {
                let meta = matrices_meta(self.fingerprint, &self.config);
                if let Some((payload, cost)) = disk.load(self.fingerprint, KIND_MATRICES, &meta) {
                    if let Some(matrices) = PairMatrices::from_bytes(&payload) {
                        self.counters
                            .matrices_rehydrated
                            .fetch_add(1, Ordering::Relaxed);
                        self.matrices_micros.store(cost.max(1), Ordering::Relaxed);
                        return Arc::new(matrices);
                    }
                    eprintln!(
                        "warning: schema-summary store: matrices payload for {} did not decode; recomputing",
                        self.fingerprint
                    );
                }
            }
            let start = Instant::now();
            let matrices = Arc::new(PairMatrices::compute(&self.stats, &self.config.paths));
            let micros = (start.elapsed().as_micros() as u64).max(1);
            self.matrices_micros.store(micros, Ordering::Relaxed);
            self.counters
                .matrices_computed
                .fetch_add(1, Ordering::Relaxed);
            if let Some(disk) = &self.disk {
                let meta = matrices_meta(self.fingerprint, &self.config);
                disk.store(
                    self.fingerprint,
                    KIND_MATRICES,
                    &meta,
                    micros,
                    &matrices.to_bytes(),
                );
            }
            matrices
        })
    }

    /// Wall time (microseconds, ≥ 1) the all-pairs matrices took to
    /// compute, or 0 if they have not been forced yet.
    pub fn matrices_cost_micros(&self) -> u64 {
        self.matrices_micros.load(Ordering::Relaxed)
    }

    /// The matrices if some caller already forced (or seeded) them —
    /// never computes. The delta-refresh path uses this to find splice
    /// bases without paying for configurations nobody asked about.
    pub(crate) fn matrices_if_computed(&self) -> Option<Arc<PairMatrices>> {
        self.matrices.get().cloned()
    }

    /// Adopt matrices derived outside this holder — the delta-refresh
    /// splice — as this `(fingerprint, config)`'s memoized matrices,
    /// spilling them to the disk tier like a computed set. `cost_micros`
    /// is the recomputation cost the cache tiers should weigh (a spliced
    /// set would cost a full cold compute to rebuild, so callers pass the
    /// old set's cost forward). Returns `false` when the matrices were
    /// already present (a concurrent request won the race); the seed is
    /// then dropped.
    pub(crate) fn seed_matrices(&self, matrices: Arc<PairMatrices>, cost_micros: u64) -> bool {
        let mut seeded = false;
        self.matrices.get_or_init(|| {
            seeded = true;
            Arc::clone(&matrices)
        });
        if seeded {
            let micros = cost_micros.max(1);
            self.matrices_micros.store(micros, Ordering::Relaxed);
            if let Some(disk) = &self.disk {
                let meta = matrices_meta(self.fingerprint, &self.config);
                disk.store(
                    self.fingerprint,
                    KIND_MATRICES,
                    &meta,
                    micros,
                    &matrices.to_bytes(),
                );
            }
        }
        seeded
    }

    /// Dominance pairs (Theorem 1), computed on first use (forces the
    /// matrices).
    pub fn dominance(&self) -> &DominanceSet {
        self.dominance.get_or_init(|| {
            Arc::new(DominanceSet::compute(
                &self.graph,
                &self.stats,
                self.matrices(),
            ))
        })
    }
}

/// One registered annotated schema plus its memoized artifacts.
pub struct CatalogEntry {
    fingerprint: SchemaFingerprint,
    graph: Arc<SchemaGraph>,
    stats: Arc<SchemaStats>,
    disk: Option<Arc<DiskTier>>,
    counters: Arc<ComputeCounters>,
    /// Artifacts keyed by the summarizer configuration that produced them.
    memo: Mutex<HashMap<SummarizerConfig, Arc<Artifacts>>>,
}

impl CatalogEntry {
    /// The entry's content fingerprint.
    pub fn fingerprint(&self) -> SchemaFingerprint {
        self.fingerprint
    }

    /// The registered schema graph.
    pub fn graph(&self) -> &Arc<SchemaGraph> {
        &self.graph
    }

    /// The registered statistics.
    pub fn stats(&self) -> &Arc<SchemaStats> {
        &self.stats
    }

    /// Snapshot of every configuration that has an artifact holder, with
    /// the holders. The delta-refresh path walks this to find old
    /// matrices to splice from.
    pub(crate) fn memoized(&self) -> Vec<(SummarizerConfig, Arc<Artifacts>)> {
        self.memo
            .lock()
            .expect("catalog memo poisoned")
            .iter()
            .map(|(config, artifacts)| (config.clone(), Arc::clone(artifacts)))
            .collect()
    }

    /// Shared artifacts for `config`, creating the (lazy) holder on first
    /// request for that configuration.
    pub fn artifacts(&self, config: &SummarizerConfig) -> Arc<Artifacts> {
        let mut memo = self.memo.lock().expect("catalog memo poisoned");
        memo.entry(config.clone())
            .or_insert_with(|| {
                Arc::new(Artifacts::new(
                    self.fingerprint,
                    Arc::clone(&self.graph),
                    Arc::clone(&self.stats),
                    config.clone(),
                    self.disk.clone(),
                    Arc::clone(&self.counters),
                ))
            })
            .clone()
    }
}

/// Thread-safe, sharded registry of annotated schemas keyed by content
/// fingerprint.
pub struct SchemaCatalog {
    shards: Vec<RwLock<HashMap<SchemaFingerprint, Arc<CatalogEntry>>>>,
    disk: Option<Arc<DiskTier>>,
    counters: Arc<ComputeCounters>,
}

impl Default for SchemaCatalog {
    fn default() -> Self {
        Self::with_tiers(DEFAULT_CATALOG_SHARDS, None)
    }
}

impl SchemaCatalog {
    /// Create an empty catalog with the default shard count and no disk
    /// tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty catalog with `shards` registry locks and an
    /// optional disk tier for matrix spill/rehydration.
    pub(crate) fn with_tiers(shards: usize, disk: Option<Arc<DiskTier>>) -> Self {
        SchemaCatalog {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            disk,
            counters: Arc::new(ComputeCounters::default()),
        }
    }

    fn shard(
        &self,
        fingerprint: SchemaFingerprint,
    ) -> &RwLock<HashMap<SchemaFingerprint, Arc<CatalogEntry>>> {
        let mut h = DefaultHasher::new();
        fingerprint.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub(crate) fn compute_counters(&self) -> &ComputeCounters {
        &self.counters
    }

    /// Register an annotated schema, returning its fingerprint and entry.
    /// Registering content that is already present returns the existing
    /// entry (and keeps its memoized artifacts).
    pub fn register(
        &self,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> (SchemaFingerprint, Arc<CatalogEntry>) {
        let fingerprint = SchemaFingerprint::of_annotated(&graph, &stats);
        let mut entries = self.shard(fingerprint).write().expect("catalog poisoned");
        let entry = entries
            .entry(fingerprint)
            .or_insert_with(|| {
                Arc::new(CatalogEntry {
                    fingerprint,
                    graph,
                    stats,
                    disk: self.disk.clone(),
                    counters: Arc::clone(&self.counters),
                    memo: Mutex::new(HashMap::new()),
                })
            })
            .clone();
        (fingerprint, entry)
    }

    /// Look up a registered schema.
    pub fn get(&self, fingerprint: SchemaFingerprint) -> Option<Arc<CatalogEntry>> {
        self.shard(fingerprint)
            .read()
            .expect("catalog poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Remove a registered schema, dropping its memoized artifacts.
    /// Returns whether an entry was present.
    pub fn remove(&self, fingerprint: SchemaFingerprint) -> bool {
        self.shard(fingerprint)
            .write()
            .expect("catalog poisoned")
            .remove(&fingerprint)
            .is_some()
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("catalog poisoned").len())
            .sum()
    }

    /// Whether no schemas are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts, in shard order — how evenly the registered
    /// schemas spread over the registry locks.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("catalog poisoned").len())
            .collect()
    }

    /// All registered fingerprints, sorted (deterministic listing order).
    pub fn fingerprints(&self) -> Vec<SchemaFingerprint> {
        let mut fps: Vec<SchemaFingerprint> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("catalog poisoned")
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        fps.sort_unstable();
        fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn fixture() -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "a1", SchemaType::simple_str()).unwrap();
        b.add_child(b.root(), "c", SchemaType::set_of_rcd())
            .unwrap();
        let g = Arc::new(b.build().unwrap());
        let s = Arc::new(SchemaStats::uniform(&g));
        (g, s)
    }

    #[test]
    fn register_is_idempotent_by_content() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (fp1, e1) = catalog.register(Arc::clone(&g), Arc::clone(&s));
        // A rebuilt but identical graph must land on the same entry.
        let (g2, s2) = fixture();
        let (fp2, e2) = catalog.register(g2, s2);
        assert_eq!(fp1, fp2);
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn artifacts_shared_per_config() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (_, entry) = catalog.register(g, s);
        let cfg = SummarizerConfig::default();
        let a1 = entry.artifacts(&cfg);
        let a2 = entry.artifacts(&cfg);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Same underlying computation regardless of which handle forces it.
        let i1 = a1.importance().iterations;
        let i2 = a2.importance().iterations;
        assert_eq!(i1, i2);
        assert!(!a1.matrices().is_empty());
        let _ = a1.dominance();
        assert_eq!(catalog.compute_counters().matrices_computed(), 1);
        assert_eq!(catalog.compute_counters().matrices_rehydrated(), 0);
    }

    #[test]
    fn matrices_cost_is_zero_until_forced() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (_, entry) = catalog.register(g, s);
        let a = entry.artifacts(&SummarizerConfig::default());
        assert_eq!(a.matrices_cost_micros(), 0);
        let _ = a.matrices();
        assert!(a.matrices_cost_micros() >= 1);
    }

    #[test]
    fn remove_forgets_the_entry() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (fp, _) = catalog.register(g, s);
        assert!(catalog.get(fp).is_some());
        assert!(catalog.remove(fp));
        assert!(!catalog.remove(fp));
        assert!(catalog.get(fp).is_none());
        assert!(catalog.is_empty());
    }

    #[test]
    fn fingerprints_listing_is_sorted() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        catalog.register(g, Arc::clone(&s));
        let mut b = SchemaGraphBuilder::new("other");
        b.add_child(b.root(), "x", SchemaType::simple_str())
            .unwrap();
        let g2 = Arc::new(b.build().unwrap());
        let s2 = Arc::new(SchemaStats::uniform(&g2));
        catalog.register(g2, s2);
        let fps = catalog.fingerprints();
        assert_eq!(fps.len(), 2);
        assert!(fps[0] < fps[1]);
    }

    #[test]
    fn shard_lens_sum_to_len() {
        let catalog = SchemaCatalog::with_tiers(4, None);
        let (g, s) = fixture();
        catalog.register(g, Arc::clone(&s));
        let mut b = SchemaGraphBuilder::new("other");
        b.add_child(b.root(), "x", SchemaType::simple_str())
            .unwrap();
        let g2 = Arc::new(b.build().unwrap());
        let s2 = Arc::new(SchemaStats::uniform(&g2));
        catalog.register(g2, s2);
        let lens = catalog.shard_lens();
        assert_eq!(lens.len(), 4);
        assert_eq!(lens.iter().sum::<usize>(), catalog.len());
    }

    #[test]
    fn matrices_rehydrate_bit_exactly_across_catalogs() {
        let dir = std::env::temp_dir().join(format!(
            "schema-summary-catalog-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(DiskTier::open(&dir).unwrap());
        let (g, s) = fixture();
        let cfg = SummarizerConfig::default();

        // First catalog computes and spills.
        let first = SchemaCatalog::with_tiers(2, Some(Arc::clone(&disk)));
        let (_, entry) = first.register(Arc::clone(&g), Arc::clone(&s));
        let computed = entry.artifacts(&cfg);
        let reference = computed.matrices().clone();
        assert_eq!(first.compute_counters().matrices_computed(), 1);
        assert!(disk.writes() >= 1);

        // A fresh catalog on the same directory rehydrates, not recomputes.
        let second = SchemaCatalog::with_tiers(2, Some(Arc::clone(&disk)));
        let (_, entry) = second.register(Arc::clone(&g), Arc::clone(&s));
        let rehydrated = entry.artifacts(&cfg);
        let matrices = rehydrated.matrices();
        assert_eq!(second.compute_counters().matrices_computed(), 0);
        assert_eq!(second.compute_counters().matrices_rehydrated(), 1);
        assert!(rehydrated.matrices_cost_micros() >= 1);
        for a in g.element_ids() {
            for b in g.element_ids() {
                assert_eq!(
                    matrices.affinity(a, b).to_bits(),
                    reference.affinity(a, b).to_bits()
                );
                assert_eq!(
                    matrices.coverage(a, b).to_bits(),
                    reference.coverage(a, b).to_bits()
                );
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
