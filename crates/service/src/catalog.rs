//! The schema catalog: annotated graphs registered under their content
//! fingerprint, each carrying lazily memoized algorithm artifacts.
//!
//! Registering the same annotated schema twice (even from different
//! processes or rebuilt object graphs) lands on the same
//! [`SchemaFingerprint`] and therefore shares one [`CatalogEntry`] — and
//! with it one importance fixpoint, one all-pairs matrix computation, and
//! one dominance set per algorithm configuration, no matter how many
//! concurrent requests arrive.

use schema_summary_algo::importance::compute_importance;
use schema_summary_algo::{DominanceSet, ImportanceResult, PairMatrices, SummarizerConfig};
use schema_summary_core::{SchemaFingerprint, SchemaGraph, SchemaStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Heavy per-schema intermediates, computed at most once per
/// `(fingerprint, configuration)` and shared across requests via `Arc`.
///
/// All three artifacts are lazy: a service that only ever answers
/// `MaxImportance` requests never pays for the all-pairs matrices.
pub struct Artifacts {
    graph: Arc<SchemaGraph>,
    stats: Arc<SchemaStats>,
    config: SummarizerConfig,
    importance: OnceLock<Arc<ImportanceResult>>,
    matrices: OnceLock<Arc<PairMatrices>>,
    /// Wall time the matrices took to compute, in microseconds (floored at
    /// 1 once computed, so 0 means "not computed yet"). This is the
    /// recomputation cost a cache eviction policy should weigh.
    matrices_micros: AtomicU64,
    dominance: OnceLock<Arc<DominanceSet>>,
}

impl Artifacts {
    fn new(graph: Arc<SchemaGraph>, stats: Arc<SchemaStats>, config: SummarizerConfig) -> Self {
        Artifacts {
            graph,
            stats,
            config,
            importance: OnceLock::new(),
            matrices: OnceLock::new(),
            matrices_micros: AtomicU64::new(0),
            dominance: OnceLock::new(),
        }
    }

    /// Importance scores (Formula 1), computed on first use.
    pub fn importance(&self) -> &ImportanceResult {
        self.importance.get_or_init(|| {
            Arc::new(compute_importance(
                &self.graph,
                &self.stats,
                &self.config.importance,
            ))
        })
    }

    /// All-pairs affinity/coverage matrices (Formulas 2–3), computed on
    /// first use. The computation's wall time is recorded for
    /// [`Artifacts::matrices_cost_micros`].
    pub fn matrices(&self) -> &PairMatrices {
        self.matrices.get_or_init(|| {
            let start = Instant::now();
            let matrices = Arc::new(PairMatrices::compute(&self.stats, &self.config.paths));
            let micros = (start.elapsed().as_micros() as u64).max(1);
            self.matrices_micros.store(micros, Ordering::Relaxed);
            matrices
        })
    }

    /// Wall time (microseconds, ≥ 1) the all-pairs matrices took to
    /// compute, or 0 if they have not been forced yet.
    pub fn matrices_cost_micros(&self) -> u64 {
        self.matrices_micros.load(Ordering::Relaxed)
    }

    /// Dominance pairs (Theorem 1), computed on first use (forces the
    /// matrices).
    pub fn dominance(&self) -> &DominanceSet {
        self.dominance.get_or_init(|| {
            Arc::new(DominanceSet::compute(
                &self.graph,
                &self.stats,
                self.matrices(),
            ))
        })
    }
}

/// One registered annotated schema plus its memoized artifacts.
pub struct CatalogEntry {
    fingerprint: SchemaFingerprint,
    graph: Arc<SchemaGraph>,
    stats: Arc<SchemaStats>,
    /// Artifacts keyed by the summarizer configuration that produced them.
    memo: Mutex<HashMap<SummarizerConfig, Arc<Artifacts>>>,
}

impl CatalogEntry {
    /// The entry's content fingerprint.
    pub fn fingerprint(&self) -> SchemaFingerprint {
        self.fingerprint
    }

    /// The registered schema graph.
    pub fn graph(&self) -> &Arc<SchemaGraph> {
        &self.graph
    }

    /// The registered statistics.
    pub fn stats(&self) -> &Arc<SchemaStats> {
        &self.stats
    }

    /// Shared artifacts for `config`, creating the (lazy) holder on first
    /// request for that configuration.
    pub fn artifacts(&self, config: &SummarizerConfig) -> Arc<Artifacts> {
        let mut memo = self.memo.lock().expect("catalog memo poisoned");
        memo.entry(config.clone())
            .or_insert_with(|| {
                Arc::new(Artifacts::new(
                    Arc::clone(&self.graph),
                    Arc::clone(&self.stats),
                    config.clone(),
                ))
            })
            .clone()
    }
}

/// Thread-safe registry of annotated schemas keyed by content fingerprint.
#[derive(Default)]
pub struct SchemaCatalog {
    entries: RwLock<HashMap<SchemaFingerprint, Arc<CatalogEntry>>>,
}

impl SchemaCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an annotated schema, returning its fingerprint and entry.
    /// Registering content that is already present returns the existing
    /// entry (and keeps its memoized artifacts).
    pub fn register(
        &self,
        graph: Arc<SchemaGraph>,
        stats: Arc<SchemaStats>,
    ) -> (SchemaFingerprint, Arc<CatalogEntry>) {
        let fingerprint = SchemaFingerprint::of_annotated(&graph, &stats);
        let mut entries = self.entries.write().expect("catalog poisoned");
        let entry = entries
            .entry(fingerprint)
            .or_insert_with(|| {
                Arc::new(CatalogEntry {
                    fingerprint,
                    graph,
                    stats,
                    memo: Mutex::new(HashMap::new()),
                })
            })
            .clone();
        (fingerprint, entry)
    }

    /// Look up a registered schema.
    pub fn get(&self, fingerprint: SchemaFingerprint) -> Option<Arc<CatalogEntry>> {
        self.entries
            .read()
            .expect("catalog poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Remove a registered schema, dropping its memoized artifacts.
    /// Returns whether an entry was present.
    pub fn remove(&self, fingerprint: SchemaFingerprint) -> bool {
        self.entries
            .write()
            .expect("catalog poisoned")
            .remove(&fingerprint)
            .is_some()
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog poisoned").len()
    }

    /// Whether no schemas are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered fingerprints, sorted (deterministic listing order).
    pub fn fingerprints(&self) -> Vec<SchemaFingerprint> {
        let mut fps: Vec<SchemaFingerprint> = self
            .entries
            .read()
            .expect("catalog poisoned")
            .keys()
            .copied()
            .collect();
        fps.sort_unstable();
        fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn fixture() -> (Arc<SchemaGraph>, Arc<SchemaStats>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "a1", SchemaType::simple_str()).unwrap();
        b.add_child(b.root(), "c", SchemaType::set_of_rcd())
            .unwrap();
        let g = Arc::new(b.build().unwrap());
        let s = Arc::new(SchemaStats::uniform(&g));
        (g, s)
    }

    #[test]
    fn register_is_idempotent_by_content() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (fp1, e1) = catalog.register(Arc::clone(&g), Arc::clone(&s));
        // A rebuilt but identical graph must land on the same entry.
        let (g2, s2) = fixture();
        let (fp2, e2) = catalog.register(g2, s2);
        assert_eq!(fp1, fp2);
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn artifacts_shared_per_config() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (_, entry) = catalog.register(g, s);
        let cfg = SummarizerConfig::default();
        let a1 = entry.artifacts(&cfg);
        let a2 = entry.artifacts(&cfg);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Same underlying computation regardless of which handle forces it.
        let i1 = a1.importance().iterations;
        let i2 = a2.importance().iterations;
        assert_eq!(i1, i2);
        assert!(!a1.matrices().is_empty());
        let _ = a1.dominance();
    }

    #[test]
    fn matrices_cost_is_zero_until_forced() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (_, entry) = catalog.register(g, s);
        let a = entry.artifacts(&SummarizerConfig::default());
        assert_eq!(a.matrices_cost_micros(), 0);
        let _ = a.matrices();
        assert!(a.matrices_cost_micros() >= 1);
    }

    #[test]
    fn remove_forgets_the_entry() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        let (fp, _) = catalog.register(g, s);
        assert!(catalog.get(fp).is_some());
        assert!(catalog.remove(fp));
        assert!(!catalog.remove(fp));
        assert!(catalog.get(fp).is_none());
        assert!(catalog.is_empty());
    }

    #[test]
    fn fingerprints_listing_is_sorted() {
        let catalog = SchemaCatalog::new();
        let (g, s) = fixture();
        catalog.register(g, Arc::clone(&s));
        let mut b = SchemaGraphBuilder::new("other");
        b.add_child(b.root(), "x", SchemaType::simple_str())
            .unwrap();
        let g2 = Arc::new(b.build().unwrap());
        let s2 = Arc::new(SchemaStats::uniform(&g2));
        catalog.register(g2, s2);
        let fps = catalog.fingerprints();
        assert_eq!(fps.len(), 2);
        assert!(fps[0] < fps[1]);
    }
}
