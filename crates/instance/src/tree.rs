//! Materialized hierarchical database instances.
//!
//! A [`DataTree`] is a forest-free tree of data nodes, each tagged with the
//! schema element it instantiates, plus resolved value references between
//! nodes (`IDREF`s, foreign keys). Atomic values themselves are irrelevant
//! to summarization (only counts matter), so nodes do not store values; the
//! `io` crate's XML loader discards text content after resolving references.

use schema_summary_core::ids::ElementId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data node within a [`DataTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One data node: an instance of a schema element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataNode {
    /// The schema element this node instantiates.
    pub element: ElementId,
    /// Parent data node (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Child data nodes in document order.
    pub children: Vec<NodeId>,
    /// Value references from this node to referee nodes.
    pub refs: Vec<NodeId>,
}

/// A materialized database instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataTree {
    nodes: Vec<DataNode>,
    root: NodeId,
}

impl DataTree {
    /// Number of data nodes (the paper's "# data elements").
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never true for built trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root data node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node record for `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &DataNode {
        &self.nodes[id.index()]
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth-first preorder traversal (children in document order), using an
    /// explicit stack exactly as Figure 3 prescribes.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of nodes instantiating `element`.
    pub fn count_of(&self, element: ElementId) -> usize {
        self.nodes.iter().filter(|n| n.element == element).count()
    }
}

/// Incremental builder for [`DataTree`].
#[derive(Debug, Clone)]
pub struct DataTreeBuilder {
    nodes: Vec<DataNode>,
}

impl DataTreeBuilder {
    /// Start a tree whose root node instantiates `root_element`.
    pub fn new(root_element: ElementId) -> Self {
        DataTreeBuilder {
            nodes: vec![DataNode {
                element: root_element,
                parent: None,
                children: Vec::new(),
                refs: Vec::new(),
            }],
        }
    }

    /// The root node id (always `NodeId(0)`).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes added so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Append a child node instantiating `element` under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` is not a node of this builder.
    pub fn add_node(&mut self, parent: NodeId, element: ElementId) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(DataNode {
            element,
            parent: Some(parent),
            children: Vec::new(),
            refs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Record a value reference from `from` to `to`.
    ///
    /// # Panics
    /// Panics if either node is unknown.
    pub fn add_ref(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.nodes.len(), "unknown node {from}");
        assert!(to.index() < self.nodes.len(), "unknown node {to}");
        self.nodes[from.index()].refs.push(to);
    }

    /// Finish construction.
    pub fn build(self) -> DataTree {
        DataTree {
            nodes: self.nodes,
            root: NodeId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_traverse() {
        let e = |i| ElementId(i);
        let mut b = DataTreeBuilder::new(e(0));
        let a = b.add_node(b.root(), e(1));
        let _a1 = b.add_node(a, e(2));
        let _a2 = b.add_node(a, e(2));
        let c = b.add_node(b.root(), e(3));
        b.add_ref(c, a);
        let t = b.build();

        assert_eq!(t.len(), 5);
        assert_eq!(t.count_of(e(2)), 2);
        let order = t.preorder();
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], t.root());
        // Preorder: root, a, a1, a2, c.
        assert_eq!(t.node(order[1]).element, e(1));
        assert_eq!(t.node(order[4]).element, e(3));
        assert_eq!(t.node(c).refs, vec![a]);
        assert_eq!(t.node(a).parent, Some(t.root()));
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut b = DataTreeBuilder::new(ElementId(0));
        b.add_node(NodeId(99), ElementId(1));
    }

    #[test]
    fn preorder_is_document_order() {
        // root -> (x -> (y), z); preorder must be root, x, y, z.
        let mut b = DataTreeBuilder::new(ElementId(0));
        let x = b.add_node(b.root(), ElementId(1));
        let _y = b.add_node(x, ElementId(2));
        let _z = b.add_node(b.root(), ElementId(3));
        let t = b.build();
        let els: Vec<u32> = t.preorder().iter().map(|&n| t.node(n).element.0).collect();
        assert_eq!(els, vec![0, 1, 2, 3]);
    }
}
