//! Seeded random instance generation.
//!
//! Generates data trees conforming to a schema graph, with configurable
//! expected fan-outs for `SetOf` elements and presence probabilities for
//! optional ones. Used by property tests (annotation invariants must hold on
//! *any* conformant instance) and by examples that need plausible data
//! without shipping a dataset.

use crate::tree::{DataTree, DataTreeBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use schema_summary_core::{ElementId, SchemaGraph, SchemaType};
use std::collections::HashMap;

/// Configuration for [`generate_instance`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; identical seeds produce identical instances.
    pub seed: u64,
    /// Default expected number of instances for `SetOf` children.
    pub default_fanout: f64,
    /// Probability that a non-set child is present (models optionality /
    /// nullable columns).
    pub presence_probability: f64,
    /// Hard cap on the number of generated nodes; generation stops adding
    /// children once reached (the tree stays conformant because only
    /// optional/child counts are truncated).
    pub max_nodes: usize,
    /// Per-element fan-out overrides (applied when the element is a `SetOf`
    /// child; key is the child element).
    pub fanout_overrides: HashMap<ElementId, f64>,
    /// Per-element presence-probability overrides for non-set children
    /// (models element-specific optionality).
    pub presence_overrides: HashMap<ElementId, f64>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0,
            default_fanout: 2.0,
            presence_probability: 0.9,
            max_nodes: 100_000,
            fanout_overrides: HashMap::new(),
            presence_overrides: HashMap::new(),
        }
    }
}

impl GeneratorConfig {
    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fan-out override for `element`.
    pub fn with_fanout(mut self, element: ElementId, fanout: f64) -> Self {
        self.fanout_overrides.insert(element, fanout);
        self
    }

    /// Builder-style presence-probability override for `element`.
    pub fn with_presence(mut self, element: ElementId, probability: f64) -> Self {
        self.presence_overrides.insert(element, probability.clamp(0.0, 1.0));
        self
    }

    /// Derive a generator configuration whose expected per-parent child
    /// counts match the relative cardinalities of `stats`: set-typed
    /// children get the structural `RC(parent → child)` as their fan-out,
    /// non-set children get it as their presence probability. Materialized
    /// instances then annotate back to approximately the same statistics
    /// (value-link reference counts are one-per-referrer, which matches
    /// profiles whose per-referrer rates are 1).
    pub fn from_stats(
        graph: &schema_summary_core::SchemaGraph,
        stats: &schema_summary_core::SchemaStats,
        seed: u64,
        max_nodes: usize,
    ) -> Self {
        let mut config = GeneratorConfig {
            seed,
            max_nodes,
            ..Default::default()
        };
        for (parent, child) in graph.structural_links() {
            let rc = stats.rc(parent, child);
            if graph.ty(child).is_set() {
                config.fanout_overrides.insert(child, rc);
            } else {
                config.presence_overrides.insert(child, rc.clamp(0.0, 1.0));
            }
        }
        config
    }
}

/// Generate a random conformant instance of `graph`.
///
/// Set-typed children get a geometric-ish number of instances with the
/// configured mean; non-set children appear with `presence_probability`
/// (choice children: exactly one branch is picked). After the tree is
/// built, every declared value link `(referrer → referee)` is instantiated
/// by giving each referrer node one reference to a uniformly random referee
/// node (if any referee nodes exist).
pub fn generate_instance(graph: &SchemaGraph, config: &GeneratorConfig) -> DataTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DataTreeBuilder::new(graph.root());
    let mut nodes_of: Vec<Vec<NodeId>> = vec![Vec::new(); graph.len()];
    nodes_of[graph.root().index()].push(b.root());

    // Breadth-first expansion keeps truncation (max_nodes) spread across the
    // whole schema instead of starving late siblings.
    let mut frontier = vec![(b.root(), graph.root())];
    while let Some((nid, eid)) = frontier.pop() {
        if b.len() >= config.max_nodes {
            break;
        }
        let children = graph.children(eid);
        if children.is_empty() {
            continue;
        }
        if matches!(graph.ty(eid).base(), SchemaType::Choice) {
            // Exactly one branch of a choice.
            let pick = children[rng.random_range(0..children.len())];
            let cid = b.add_node(nid, pick);
            nodes_of[pick.index()].push(cid);
            frontier.push((cid, pick));
            continue;
        }
        for &ce in children {
            let count = if graph.ty(ce).is_set() {
                let mean = config
                    .fanout_overrides
                    .get(&ce)
                    .copied()
                    .unwrap_or(config.default_fanout);
                sample_count(&mut rng, mean)
            } else {
                let p = config
                    .presence_overrides
                    .get(&ce)
                    .copied()
                    .unwrap_or(config.presence_probability);
                usize::from(rng.random::<f64>() < p)
            };
            for _ in 0..count {
                if b.len() >= config.max_nodes {
                    break;
                }
                let cid = b.add_node(nid, ce);
                nodes_of[ce.index()].push(cid);
                frontier.push((cid, ce));
            }
        }
    }

    // Instantiate value links.
    for (from_e, to_e) in graph.value_links() {
        let targets = &nodes_of[to_e.index()];
        if targets.is_empty() {
            continue;
        }
        // Clone the referrer list: add_ref borrows the builder mutably.
        let referrers = nodes_of[from_e.index()].clone();
        for from_n in referrers {
            let t = targets[rng.random_range(0..targets.len())];
            b.add_ref(from_n, t);
        }
    }
    b.build()
}

/// Sample a non-negative count with the given mean: `floor(mean)` plus a
/// Bernoulli for the fractional part, then ±1 jitter (clamped at 0) to add
/// variance while keeping the expectation close to `mean`.
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let base = mean.floor() as i64;
    let frac_extra = i64::from(rng.random::<f64>() < mean.fract());
    let jitter: i64 = rng.random_range(-1..=1);
    (base + frac_extra + jitter).max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_schema;
    use crate::conformance::check_conformance;
    use schema_summary_core::graph::SchemaGraphBuilder;

    fn schema() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let contact = b.add_child(person, "contact", SchemaType::choice()).unwrap();
        b.add_child(contact, "email", SchemaType::simple_str()).unwrap();
        b.add_child(contact, "phone", SchemaType::simple_str()).unwrap();
        let oas = b.add_child(b.root(), "open_auctions", SchemaType::rcd()).unwrap();
        let oa = b.add_child(oas, "open_auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn generated_instances_conform() {
        let g = schema();
        for seed in 0..10 {
            let t = generate_instance(&g, &GeneratorConfig::default().with_seed(seed));
            let violations = check_conformance(&g, &t);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = schema();
        let cfg = GeneratorConfig::default().with_seed(42);
        let a = generate_instance(&g, &cfg);
        let b2 = generate_instance(&g, &cfg);
        assert_eq!(a, b2);
        let c = generate_instance(&g, &GeneratorConfig::default().with_seed(43));
        assert_ne!(a, c);
    }

    #[test]
    fn fanout_override_steers_counts() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let cfg = GeneratorConfig {
            seed: 7,
            default_fanout: 2.0,
            ..Default::default()
        }
        .with_fanout(person, 50.0);
        let t = generate_instance(&g, &cfg);
        assert!(t.count_of(person) >= 40, "got {}", t.count_of(person));
    }

    #[test]
    fn node_cap_respected() {
        let g = schema();
        let cfg = GeneratorConfig {
            seed: 1,
            default_fanout: 10.0,
            max_nodes: 50,
            ..Default::default()
        };
        let t = generate_instance(&g, &cfg);
        assert!(t.len() <= 50);
        // Still conformant even when truncated.
        assert!(check_conformance(&g, &t).is_empty());
    }

    #[test]
    fn generated_instance_annotates() {
        let g = schema();
        let t = generate_instance(&g, &GeneratorConfig::default().with_seed(3));
        let s = annotate_schema(&g, &t).unwrap();
        assert_eq!(s.total_card(), t.len() as f64);
        // Bidders reference persons, so if both exist RC(person->bidder) > 0.
        let person = g.find_unique("person").unwrap();
        let bidder = g.find_unique("bidder").unwrap();
        if s.card(bidder) > 0.0 && s.card(person) > 0.0 {
            assert!(s.rc(person, bidder) > 0.0);
        }
    }
}
