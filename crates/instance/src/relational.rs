//! Relational instances and their lowering onto the hierarchical data model.
//!
//! Section 2 maps a relational schema onto the schema graph by introducing
//! an artificial root with structural links to every relation element;
//! relations are `SetOf Rcd` elements and columns their `Simple` children.
//! Correspondingly, a relational *instance* lowers to a [`DataTree`]: one
//! node per row under the relation element, one child node per non-null
//! column value, and one value reference per resolved foreign key.

use crate::tree::{DataTree, DataTreeBuilder, NodeId};
use schema_summary_core::{ElementId, SchemaError, SchemaGraph};
use std::collections::HashMap;

/// A foreign-key reference from a row to a row of another table, by primary
/// key value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForeignKey {
    /// The referee relation element.
    pub to_table: ElementId,
    /// The primary-key value of the referenced row.
    pub key: u64,
}

/// One row: its primary key, which columns are non-null, and its foreign
/// keys. Column presence is all the summarizer needs; actual values are
/// irrelevant to cardinality statistics.
#[derive(Debug, Clone)]
pub struct Row {
    /// Primary-key value identifying this row within its table.
    pub key: u64,
    /// Subset of the table's column elements that are non-null in this row.
    pub columns: Vec<ElementId>,
    /// Outgoing foreign keys.
    pub fks: Vec<ForeignKey>,
}

/// A populated table.
#[derive(Debug, Clone)]
pub struct Table {
    /// The relation element this table instantiates.
    pub element: ElementId,
    /// The table's rows.
    pub rows: Vec<Row>,
}

/// A relational database instance over a relational-style schema graph.
#[derive(Debug, Clone, Default)]
pub struct RelationalInstance {
    /// All populated tables.
    pub tables: Vec<Table>,
}

impl RelationalInstance {
    /// Create an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table, returning `self` for chaining.
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Lower this instance to a [`DataTree`] under `graph`'s artificial
    /// root.
    ///
    /// Foreign keys must reference existing rows; dangling references and
    /// tables whose element is not a child of the root are reported as
    /// errors.
    pub fn to_data_tree(&self, graph: &SchemaGraph) -> Result<DataTree, SchemaError> {
        let mut b = DataTreeBuilder::new(graph.root());
        // First pass: create all row nodes so FKs can resolve forward.
        let mut row_nodes: HashMap<(ElementId, u64), NodeId> = HashMap::new();
        for table in &self.tables {
            graph.check(table.element)?;
            if graph.parent(table.element) != Some(graph.root()) {
                return Err(SchemaError::Invalid(format!(
                    "table element {} is not a child of the artificial root",
                    graph.label(table.element)
                )));
            }
            for row in &table.rows {
                let nid = b.add_node(b.root(), table.element);
                if row_nodes.insert((table.element, row.key), nid).is_some() {
                    return Err(SchemaError::Invalid(format!(
                        "duplicate key {} in table {}",
                        row.key,
                        graph.label(table.element)
                    )));
                }
            }
        }
        // Second pass: column nodes and resolved references.
        for table in &self.tables {
            for row in &table.rows {
                let rnode = row_nodes[&(table.element, row.key)];
                for &col in &row.columns {
                    if graph.parent(col) != Some(table.element) {
                        return Err(SchemaError::Invalid(format!(
                            "column {} is not a column of table {}",
                            graph.label(col),
                            graph.label(table.element)
                        )));
                    }
                    b.add_node(rnode, col);
                }
                for fk in &row.fks {
                    let target =
                        row_nodes
                            .get(&(fk.to_table, fk.key))
                            .ok_or_else(|| {
                                SchemaError::Invalid(format!(
                                    "dangling foreign key {}({}) from table {}",
                                    graph.label(fk.to_table),
                                    fk.key,
                                    graph.label(table.element)
                                ))
                            })?;
                    b.add_ref(rnode, *target);
                }
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_schema;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;

    /// db -> {customer(c_id, c_name), orders(o_id, o_total)};
    /// orders ->V customer.
    fn schema() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let customer = b.add_child(b.root(), "customer", SchemaType::set_of_rcd()).unwrap();
        b.add_child(customer, "c_id", SchemaType::simple_id()).unwrap();
        b.add_child(customer, "c_name", SchemaType::simple_str()).unwrap();
        let orders = b.add_child(b.root(), "orders", SchemaType::set_of_rcd()).unwrap();
        b.add_child(orders, "o_id", SchemaType::simple_id()).unwrap();
        b.add_child(orders, "o_total", SchemaType::simple_int()).unwrap();
        b.add_value_link(orders, customer).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lowering_counts_match() {
        let g = schema();
        let customer = g.find_unique("customer").unwrap();
        let orders = g.find_unique("orders").unwrap();
        let c_id = g.find_unique("c_id").unwrap();
        let c_name = g.find_unique("c_name").unwrap();
        let o_id = g.find_unique("o_id").unwrap();
        let o_total = g.find_unique("o_total").unwrap();

        let inst = RelationalInstance::new()
            .with_table(Table {
                element: customer,
                rows: (0..4)
                    .map(|k| Row {
                        key: k,
                        columns: vec![c_id, c_name],
                        fks: vec![],
                    })
                    .collect(),
            })
            .with_table(Table {
                element: orders,
                rows: (0..12)
                    .map(|k| Row {
                        key: k,
                        columns: vec![o_id, o_total],
                        fks: vec![ForeignKey {
                            to_table: customer,
                            key: k % 4,
                        }],
                    })
                    .collect(),
            });

        let tree = inst.to_data_tree(&g).unwrap();
        // 1 root + 4 customers + 8 customer columns + 12 orders + 24 order columns.
        assert_eq!(tree.len(), 1 + 4 + 8 + 12 + 24);
        let stats = annotate_schema(&g, &tree).unwrap();
        assert_eq!(stats.card(customer), 4.0);
        assert_eq!(stats.card(orders), 12.0);
        // 3 orders per customer.
        assert!((stats.rc(customer, orders) - 3.0).abs() < 1e-12);
        assert!((stats.rc(orders, customer) - 1.0).abs() < 1e-12);
        // Every order has exactly one o_total.
        assert!((stats.rc(orders, o_total) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_columns_reduce_rc() {
        let g = schema();
        let customer = g.find_unique("customer").unwrap();
        let c_id = g.find_unique("c_id").unwrap();
        let c_name = g.find_unique("c_name").unwrap();
        let inst = RelationalInstance::new().with_table(Table {
            element: customer,
            rows: vec![
                Row { key: 0, columns: vec![c_id, c_name], fks: vec![] },
                Row { key: 1, columns: vec![c_id], fks: vec![] }, // null name
            ],
        });
        let tree = inst.to_data_tree(&g).unwrap();
        let stats = annotate_schema(&g, &tree).unwrap();
        assert!((stats.rc(customer, c_name) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dangling_fk_rejected() {
        let g = schema();
        let customer = g.find_unique("customer").unwrap();
        let orders = g.find_unique("orders").unwrap();
        let inst = RelationalInstance::new().with_table(Table {
            element: orders,
            rows: vec![Row {
                key: 0,
                columns: vec![],
                fks: vec![ForeignKey { to_table: customer, key: 42 }],
            }],
        });
        assert!(inst.to_data_tree(&g).is_err());
    }

    #[test]
    fn duplicate_key_rejected() {
        let g = schema();
        let customer = g.find_unique("customer").unwrap();
        let inst = RelationalInstance::new().with_table(Table {
            element: customer,
            rows: vec![
                Row { key: 7, columns: vec![], fks: vec![] },
                Row { key: 7, columns: vec![], fks: vec![] },
            ],
        });
        assert!(inst.to_data_tree(&g).is_err());
    }

    #[test]
    fn foreign_column_rejected() {
        let g = schema();
        let customer = g.find_unique("customer").unwrap();
        let o_id = g.find_unique("o_id").unwrap();
        let inst = RelationalInstance::new().with_table(Table {
            element: customer,
            rows: vec![Row { key: 0, columns: vec![o_id], fks: vec![] }],
        });
        assert!(inst.to_data_tree(&g).is_err());
    }
}
