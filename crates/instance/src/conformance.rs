//! Conformance checking between a data tree and a schema graph.
//!
//! Definition 1 footnotes the notion of conformance from the XML Schema
//! recommendation; we implement the structural core of it:
//!
//! 1. every data node instantiates an element of the schema, and the root
//!    node instantiates the schema root;
//! 2. a child node's element must be a structural child of its parent
//!    node's element;
//! 3. an element whose type is not `SetOf ...` occurs at most once under
//!    each parent node;
//! 4. a `Choice`-typed node has at most one child;
//! 5. every value reference follows a declared value link, and `Simple`
//!    nodes have no children.

use crate::tree::{DataTree, NodeId};
use schema_summary_core::{ElementId, SchemaGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A single conformance violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The root node does not instantiate the schema root.
    WrongRoot {
        /// Element the root node actually instantiates.
        found: ElementId,
    },
    /// A node references a schema element the graph does not contain.
    UnknownElement {
        /// Offending data node.
        node: NodeId,
    },
    /// A child node's element is not a structural child of the parent's.
    NotAChild {
        /// Offending data node.
        node: NodeId,
        /// Element of the child node.
        child: ElementId,
        /// Element of its parent node.
        parent: ElementId,
    },
    /// A non-`SetOf` element occurs more than once under one parent node.
    MultiplicityExceeded {
        /// The parent data node.
        parent: NodeId,
        /// The element occurring too often.
        element: ElementId,
        /// How many times it occurred.
        count: usize,
    },
    /// A `Choice`-typed node has more than one child.
    ChoiceViolation {
        /// The offending data node.
        node: NodeId,
        /// Number of children found.
        count: usize,
    },
    /// A `Simple`-typed node has children.
    SimpleWithChildren {
        /// The offending data node.
        node: NodeId,
    },
    /// A value reference does not follow a declared value link.
    UndeclaredReference {
        /// Referrer data node.
        from: NodeId,
        /// Referrer element.
        from_element: ElementId,
        /// Referee element.
        to_element: ElementId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongRoot { found } => write!(f, "root node instantiates {found}"),
            Violation::UnknownElement { node } => write!(f, "{node}: unknown schema element"),
            Violation::NotAChild {
                node,
                child,
                parent,
            } => write!(f, "{node}: {child} is not a schema child of {parent}"),
            Violation::MultiplicityExceeded {
                parent,
                element,
                count,
            } => write!(
                f,
                "{parent}: non-set element {element} occurs {count} times"
            ),
            Violation::ChoiceViolation { node, count } => {
                write!(f, "{node}: choice node has {count} children")
            }
            Violation::SimpleWithChildren { node } => {
                write!(f, "{node}: simple node has children")
            }
            Violation::UndeclaredReference {
                from,
                from_element,
                to_element,
            } => write!(
                f,
                "{from}: undeclared value reference {from_element} -> {to_element}"
            ),
        }
    }
}

/// Check that `data` conforms to `graph`, returning all violations found
/// (empty when conformant).
pub fn check_conformance(graph: &SchemaGraph, data: &DataTree) -> Vec<Violation> {
    let mut out = Vec::new();
    let root_el = data.node(data.root()).element;
    if root_el != graph.root() {
        out.push(Violation::WrongRoot { found: root_el });
    }
    for nid in data.node_ids() {
        let node = data.node(nid);
        if graph.check(node.element).is_err() {
            out.push(Violation::UnknownElement { node: nid });
            continue;
        }
        let ty = graph.ty(node.element);
        if ty.is_simple() && !node.children.is_empty() {
            out.push(Violation::SimpleWithChildren { node: nid });
        }
        if matches!(ty.base(), schema_summary_core::SchemaType::Choice) && node.children.len() > 1
        {
            out.push(Violation::ChoiceViolation {
                node: nid,
                count: node.children.len(),
            });
        }
        // Child element legality + multiplicity.
        let mut per_element: HashMap<ElementId, usize> = HashMap::new();
        for &cid in &node.children {
            let ce = data.node(cid).element;
            if graph.check(ce).is_err() {
                continue; // reported when the child itself is visited
            }
            if graph.parent(ce) != Some(node.element) {
                out.push(Violation::NotAChild {
                    node: cid,
                    child: ce,
                    parent: node.element,
                });
            } else {
                *per_element.entry(ce).or_insert(0) += 1;
            }
        }
        for (ce, count) in per_element {
            if count > 1 && !graph.ty(ce).is_set() {
                out.push(Violation::MultiplicityExceeded {
                    parent: nid,
                    element: ce,
                    count,
                });
            }
        }
        // Reference legality.
        for &rid in &node.refs {
            let re = data.node(rid).element;
            if !graph.value_links_from(node.element).contains(&re) {
                out.push(Violation::UndeclaredReference {
                    from: nid,
                    from_element: node.element,
                    to_element: re,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DataTreeBuilder;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;

    fn schema() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let person = b.add_child(b.root(), "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let contact = b.add_child(person, "contact", SchemaType::choice()).unwrap();
        b.add_child(contact, "email", SchemaType::simple_str()).unwrap();
        b.add_child(contact, "phone", SchemaType::simple_str()).unwrap();
        let friend = b.add_child(person, "friend", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(friend, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn conformant_instance_passes() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let contact = g.find_unique("contact").unwrap();
        let email = g.find_unique("email").unwrap();
        let friend = g.find_unique("friend").unwrap();

        let mut t = DataTreeBuilder::new(g.root());
        let p1 = t.add_node(t.root(), person);
        t.add_node(p1, name);
        let c1 = t.add_node(p1, contact);
        t.add_node(c1, email);
        let p2 = t.add_node(t.root(), person);
        t.add_node(p2, name);
        let f = t.add_node(p2, friend);
        t.add_ref(f, p1);
        assert!(check_conformance(&g, &t.build()).is_empty());
    }

    #[test]
    fn detects_wrong_root_and_unknown_element() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let t = DataTreeBuilder::new(person).build();
        let v = check_conformance(&g, &t);
        assert!(v.iter().any(|x| matches!(x, Violation::WrongRoot { .. })));

        let mut t2 = DataTreeBuilder::new(g.root());
        t2.add_node(t2.root(), schema_summary_core::ElementId(99));
        let v2 = check_conformance(&g, &t2.build());
        assert!(v2.iter().any(|x| matches!(x, Violation::UnknownElement { .. })));
    }

    #[test]
    fn detects_multiplicity_violation() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let mut t = DataTreeBuilder::new(g.root());
        let p = t.add_node(t.root(), person);
        t.add_node(p, name);
        t.add_node(p, name); // name is not SetOf: violation
        let v = check_conformance(&g, &t.build());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MultiplicityExceeded { count: 2, .. })));
    }

    #[test]
    fn detects_choice_violation() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let contact = g.find_unique("contact").unwrap();
        let email = g.find_unique("email").unwrap();
        let phone = g.find_unique("phone").unwrap();
        let mut t = DataTreeBuilder::new(g.root());
        let p = t.add_node(t.root(), person);
        let c = t.add_node(p, contact);
        t.add_node(c, email);
        t.add_node(c, phone); // both branches of a choice
        let v = check_conformance(&g, &t.build());
        assert!(v.iter().any(|x| matches!(x, Violation::ChoiceViolation { count: 2, .. })));
    }

    #[test]
    fn detects_misplaced_child_and_bad_ref() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let mut t = DataTreeBuilder::new(g.root());
        let n = t.add_node(t.root(), name); // name directly under root
        let p = t.add_node(t.root(), person);
        t.add_ref(p, n); // person -> name is not a declared value link
        let v = check_conformance(&g, &t.build());
        assert!(v.iter().any(|x| matches!(x, Violation::NotAChild { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UndeclaredReference { .. })));
    }

    #[test]
    fn detects_simple_with_children() {
        let g = schema();
        let person = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let mut t = DataTreeBuilder::new(g.root());
        let p = t.add_node(t.root(), person);
        let n = t.add_node(p, name);
        t.add_node(n, name); // children under a Simple node
        let v = check_conformance(&g, &t.build());
        assert!(v.iter().any(|x| matches!(x, Violation::SimpleWithChildren { .. })));
    }
}
