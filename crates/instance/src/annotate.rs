//! `annotateSchema` (Figure 3): derive cardinality statistics from data.
//!
//! The pass visits the database in depth-first preorder using an explicit
//! stack. At each data node it increments (a) the cardinality of the node's
//! schema element, (b) the instance count of the structural link from its
//! parent element, and (c) the instance count of each value link induced by
//! the node's references. Relative cardinalities then fall out as
//! `RC(e1 → e2) = linkCard / Card(e1)` on each side (Figure 3, line 15).

use crate::tree::DataTree;
use schema_summary_core::stats::LinkCount;
use schema_summary_core::{SchemaError, SchemaGraph, SchemaStats};
use std::collections::HashMap;

/// Annotate `graph` with cardinalities derived from `data`.
///
/// Returns an error if `data` references schema elements outside `graph` or
/// uses links the schema does not declare (run
/// [`crate::conformance::check_conformance`] first for a precise report).
pub fn annotate_schema(graph: &SchemaGraph, data: &DataTree) -> Result<SchemaStats, SchemaError> {
    let mut card = vec![0u64; graph.len()];
    let mut link_counts: HashMap<(u32, u32), u64> = HashMap::new();

    // Depth-first preorder traversal with an explicit stack (Figure 3 line 4).
    let mut stack = vec![data.root()];
    while let Some(nid) = stack.pop() {
        let node = data.node(nid);
        let e = node.element;
        graph.check(e)?;
        // Line 9: e.Card++.
        card[e.index()] += 1;
        // Lines 10-11: increment the structural link from the parent element.
        if let Some(pid) = node.parent {
            let pe = data.node(pid).element;
            if graph.parent(e) != Some(pe) {
                return Err(SchemaError::Invalid(format!(
                    "data node {nid} instantiates {} under parent element {}, which is not its schema parent",
                    graph.label(e),
                    graph.label(pe)
                )));
            }
            *link_counts.entry((pe.0, e.0)).or_insert(0) += 1;
        }
        // Lines 12-13: increment value links for each reference.
        for &rid in &node.refs {
            let re = data.node(rid).element;
            if !graph.value_links_from(e).contains(&re) {
                return Err(SchemaError::Invalid(format!(
                    "data node {nid} references element {} but schema declares no value link {} -> {}",
                    graph.label(re),
                    graph.label(e),
                    graph.label(re)
                )));
            }
            *link_counts.entry((e.0, re.0)).or_insert(0) += 1;
        }
        for &c in node.children.iter().rev() {
            stack.push(c);
        }
    }

    let counts: Vec<LinkCount> = link_counts
        .into_iter()
        .map(|((f, t), count)| LinkCount {
            from: schema_summary_core::ElementId(f),
            to: schema_summary_core::ElementId(t),
            count,
        })
        .collect();
    SchemaStats::from_link_counts(graph, &card, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DataTreeBuilder;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;
    use schema_summary_core::ElementId;

    /// site -> open_auctions -> open_auction* -> bidder*; people -> person*;
    /// bidder ->V person.
    fn schema() -> (SchemaGraph, ElementId, ElementId, ElementId, ElementId, ElementId) {
        let mut b = SchemaGraphBuilder::new("site");
        let oas = b.add_child(b.root(), "open_auctions", SchemaType::rcd()).unwrap();
        let oa = b.add_child(oas, "open_auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        (g, oas, oa, bidder, people, person)
    }

    #[test]
    fn annotation_matches_hand_count() {
        let (g, oas, oa, bidder, people, person) = schema();
        let mut t = DataTreeBuilder::new(g.root());
        let oas_n = t.add_node(t.root(), oas);
        let people_n = t.add_node(t.root(), people);
        let p1 = t.add_node(people_n, person);
        let p2 = t.add_node(people_n, person);
        // Two auctions: one with 3 bidders, one with 1.
        let a1 = t.add_node(oas_n, oa);
        let a2 = t.add_node(oas_n, oa);
        for target in [p1, p2, p1] {
            let b = t.add_node(a1, bidder);
            t.add_ref(b, target);
        }
        let b4 = t.add_node(a2, bidder);
        t.add_ref(b4, p2);
        let data = t.build();

        let s = annotate_schema(&g, &data).unwrap();
        assert_eq!(s.card(oa), 2.0);
        assert_eq!(s.card(bidder), 4.0);
        assert_eq!(s.card(person), 2.0);
        // RC(oa -> bidder) = 4/2 = 2 bidders per auction on average.
        assert!((s.rc(oa, bidder) - 2.0).abs() < 1e-12);
        // RC(bidder -> oa) = 4/4 = 1.
        assert!((s.rc(bidder, oa) - 1.0).abs() < 1e-12);
        // RC(person -> bidder) = 4 refs / 2 persons = 2.
        assert!((s.rc(person, bidder) - 2.0).abs() < 1e-12);
        // RC(bidder -> person) = 4/4 = 1.
        assert!((s.rc(bidder, person) - 1.0).abs() < 1e-12);
        // Total card = number of data nodes.
        assert_eq!(s.total_card(), data.len() as f64);
    }

    #[test]
    fn rejects_wrong_parent() {
        let (g, _oas, oa, _bidder, people, _person) = schema();
        let mut t = DataTreeBuilder::new(g.root());
        let people_n = t.add_node(t.root(), people);
        // open_auction under people: schema violation.
        t.add_node(people_n, oa);
        let err = annotate_schema(&g, &t.build()).unwrap_err();
        assert!(matches!(err, SchemaError::Invalid(_)));
    }

    #[test]
    fn rejects_undeclared_reference() {
        let (g, oas, oa, _bidder, people, person) = schema();
        let mut t = DataTreeBuilder::new(g.root());
        let oas_n = t.add_node(t.root(), oas);
        let a = t.add_node(oas_n, oa);
        let people_n = t.add_node(t.root(), people);
        let p = t.add_node(people_n, person);
        // oa -> person is not a declared value link.
        t.add_ref(a, p);
        let err = annotate_schema(&g, &t.build()).unwrap_err();
        assert!(matches!(err, SchemaError::Invalid(_)));
    }

    #[test]
    fn empty_sections_get_zero_rc() {
        let (g, _oas, oa, bidder, people, person) = schema();
        // Only people populated; auctions absent entirely.
        let mut t = DataTreeBuilder::new(g.root());
        let people_n = t.add_node(t.root(), people);
        t.add_node(people_n, person);
        let s = annotate_schema(&g, &t.build()).unwrap();
        assert_eq!(s.card(oa), 0.0);
        assert_eq!(s.rc(oa, bidder), 0.0);
        assert_eq!(s.rc(person, bidder), 0.0);
        assert!(s.card(person) > 0.0);
    }
}
