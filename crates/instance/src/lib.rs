//! Database instances and the `annotateSchema` cardinality pass.
//!
//! The paper's algorithms observe the database through two statistics —
//! element cardinalities and link relative cardinalities — computed by a
//! single depth-first pass over the data (Figure 3). This crate provides:
//!
//! * [`tree::DataTree`] — a materialized hierarchical database instance
//!   (XML documents; relational databases are mapped onto the same shape
//!   with one node per row and one child node per column value);
//! * [`conformance`] — validation that an instance conforms to a schema
//!   graph (the notion of conformance referenced in Definition 1);
//! * [`annotate`] — the faithful Figure-3 implementation producing
//!   [`schema_summary_core::SchemaStats`];
//! * [`relational::RelationalInstance`] — a table/row representation that
//!   lowers to a [`tree::DataTree`] under the artificial root;
//! * [`generate`] — a seeded random instance generator used by property
//!   tests and examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod conformance;
pub mod generate;
pub mod relational;
pub mod tree;

pub use annotate::annotate_schema;
pub use conformance::check_conformance;
pub use tree::{DataTree, DataTreeBuilder, NodeId};
