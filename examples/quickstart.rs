//! Quickstart: build a small schema, attach data statistics, and summarize.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use schema_summary::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the schema: a tiny auction site.
    let mut b = SchemaGraphBuilder::new("site");
    let people = b.add_child(b.root(), "people", SchemaType::rcd())?;
    let person = b.add_child(people, "person", SchemaType::set_of_rcd())?;
    b.add_child(person, "name", SchemaType::simple_str())?;
    b.add_child(person, "email", SchemaType::simple_str())?;
    let profile = b.add_child(person, "profile", SchemaType::rcd())?;
    b.add_child(profile, "age", SchemaType::simple_int())?;
    b.add_child(profile, "interest", SchemaType::set_of_simple_str())?;
    let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd())?;
    let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd())?;
    b.add_child(auction, "reserve", SchemaType::simple_float())?;
    let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd())?;
    b.add_child(bidder, "increase", SchemaType::simple_float())?;
    b.add_value_link(bidder, person)?;
    let graph = b.build()?;
    println!("schema:\n{}", graph.outline());

    // 2. Attach database statistics. Here we generate a random conformant
    //    instance and annotate it with the paper's Figure-3 pass; real
    //    applications load an XML document or relational instance instead.
    let config = GeneratorConfig {
        seed: 7,
        default_fanout: 4.0,
        ..Default::default()
    };
    let data = generate_instance(&graph, &config);
    println!("generated {} data nodes", data.len());
    let stats = annotate_schema(&graph, &data)?;

    // 3. Summarize: three abstract elements balancing importance and
    //    coverage (the paper's BalanceSummary).
    let mut summarizer = Summarizer::new(&graph, &stats);
    let summary = summarizer.summarize(3, Algorithm::Balance)?;
    println!("{}", summary.outline(&graph));
    println!(
        "summary importance R = {:.3}, coverage C = {:.3}",
        summarizer.selection_importance(&summary.visible_elements()),
        summarizer.selection_coverage(&summary.visible_elements()),
    );

    // 4. Measure how much the summary helps a user locate `increase`.
    let q = QueryIntention::from_labels(&graph, "find-increase", &["auction", "increase"])?;
    let without = best_first_cost(&graph, &q, CostModel::SiblingScan);
    let with = summary_cost(&graph, &summary, &q, CostModel::SiblingScan);
    println!(
        "query discovery cost: best-first {} vs with summary {}",
        without.cost, with.cost
    );
    Ok(())
}
