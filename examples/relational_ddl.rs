//! Summarize a relational schema straight from SQL DDL, with statistics
//! from a populated instance — the end-to-end relational workflow.
//!
//! ```text
//! cargo run --example relational_ddl
//! ```

use schema_summary::prelude::*;
use schema_summary_instance::relational::{ForeignKey, RelationalInstance, Row, Table};
use schema_summary_io::{parse_ddl, schema_to_dot, summary_to_dot};

const DDL: &str = r"
    CREATE TABLE department (
        d_id     INTEGER PRIMARY KEY,
        d_name   VARCHAR(40),
        d_budget DECIMAL(12,2)
    );
    CREATE TABLE employee (
        e_id     INTEGER PRIMARY KEY,
        e_name   VARCHAR(40),
        e_title  VARCHAR(20),
        e_salary DECIMAL(12,2),
        e_dept   INTEGER REFERENCES department
    );
    CREATE TABLE project (
        p_id     INTEGER PRIMARY KEY,
        p_name   VARCHAR(40),
        p_lead   INTEGER REFERENCES employee,
        p_dept   INTEGER REFERENCES department
    );
    CREATE TABLE assignment (
        a_emp     INTEGER REFERENCES employee,
        a_proj    INTEGER REFERENCES project,
        a_percent INTEGER
    );
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the DDL into a schema graph (artificial root + relations).
    let graph = parse_ddl(DDL, "company")?;
    println!("parsed {} schema elements from DDL", graph.len());

    // 2. Populate a small instance: 3 departments, 30 employees,
    //    8 projects, 60 assignments.
    let t = |name: &str| graph.find_unique(name).expect("table exists");
    let col = |name: &str| graph.find_unique(name).expect("column exists");
    let dept_cols = vec![col("d_id"), col("d_name"), col("d_budget")];
    let emp_cols = vec![col("e_id"), col("e_name"), col("e_title"), col("e_salary"), col("e_dept")];
    let proj_cols = vec![col("p_id"), col("p_name"), col("p_lead"), col("p_dept")];
    let asg_cols = vec![col("a_emp"), col("a_proj"), col("a_percent")];
    let inst = RelationalInstance::new()
        .with_table(Table {
            element: t("department"),
            rows: (0..3)
                .map(|k| Row { key: k, columns: dept_cols.clone(), fks: vec![] })
                .collect(),
        })
        .with_table(Table {
            element: t("employee"),
            rows: (0..30)
                .map(|k| Row {
                    key: k,
                    columns: emp_cols.clone(),
                    fks: vec![ForeignKey { to_table: t("department"), key: k % 3 }],
                })
                .collect(),
        })
        .with_table(Table {
            element: t("project"),
            rows: (0..8)
                .map(|k| Row {
                    key: k,
                    columns: proj_cols.clone(),
                    fks: vec![
                        ForeignKey { to_table: t("employee"), key: k % 30 },
                        ForeignKey { to_table: t("department"), key: k % 3 },
                    ],
                })
                .collect(),
        })
        .with_table(Table {
            element: t("assignment"),
            rows: (0..60)
                .map(|k| Row {
                    key: k,
                    columns: asg_cols.clone(),
                    fks: vec![
                        ForeignKey { to_table: t("employee"), key: k % 30 },
                        ForeignKey { to_table: t("project"), key: k % 8 },
                    ],
                })
                .collect(),
        });

    // 3. Lower to the hierarchical data model, check conformance, annotate.
    let data = inst.to_data_tree(&graph)?;
    let violations = check_conformance(&graph, &data);
    assert!(violations.is_empty(), "instance conforms: {violations:?}");
    let stats = annotate_schema(&graph, &data)?;
    println!(
        "annotated {} data elements; RC(department -> employee) = {:.1}",
        data.len(),
        stats.rc(t("department"), t("employee"))
    );

    // 4. Summarize down to two abstract elements and export DOT for both.
    let mut s = Summarizer::new(&graph, &stats);
    let summary = s.summarize(2, Algorithm::Balance)?;
    println!("\n{}", summary.outline(&graph));
    println!("schema DOT is {} bytes; summary DOT:", schema_to_dot(&graph).len());
    println!("{}", summary_to_dot(&graph, &summary));
    Ok(())
}
