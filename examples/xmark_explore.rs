//! Explore the XMark benchmark schema through summaries of growing sizes,
//! then drill into one abstract element (the paper's Figure 2 interaction).
//!
//! ```text
//! cargo run --release --example xmark_explore
//! ```

use schema_summary::prelude::*;
use schema_summary_datasets::xmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = xmark::dataset(1.0);
    println!(
        "XMark: {} schema elements, {:.0}k data elements, {} queries",
        d.graph.len(),
        d.stats.total_card() / 1000.0,
        d.queries.len()
    );

    let mut s = Summarizer::new(&d.graph, &d.stats);

    // The paper's headline: the most important elements are bidder, item,
    // and person.
    let imp = s.importance().clone();
    println!("\ntop-5 by importance:");
    for &e in imp.ranked(&d.graph).iter().take(5) {
        println!("  {:<45} {:>10.0}", d.graph.label_path(e), imp.score(e));
    }

    // Summaries at the sizes the paper asked its experts for.
    for k in [5, 10, 15] {
        let summary = s.summarize(k, Algorithm::Balance)?;
        let names: Vec<&str> = summary
            .visible_elements()
            .iter()
            .map(|&e| d.graph.label(e))
            .collect();
        println!("\nsize-{k} summary: {}", names.join(", "));
    }

    // Expand the person group of the size-5 summary (Figure 2(C)).
    let summary = s.summarize(5, Algorithm::Balance)?;
    let person_group = summary
        .abstract_ids()
        .find(|&a| d.graph.label(summary.abstracts()[a.index()].representative) == "person");
    if let Some(aid) = person_group {
        let expanded = summary.expand(&d.graph, aid)?;
        println!(
            "\nexpanded person group ({} members revealed):\n{}",
            summary.abstracts()[aid.index()].members.len(),
            expanded.outline(&d.graph)
        );
    }

    // Multi-level navigation: a 12-element map under a 4-element overview.
    let ml = s.multi_level(&[12, 4], Algorithm::Balance)?;
    println!("\nmulti-level summary:");
    for (i, level) in ml.levels().iter().enumerate() {
        let names: Vec<&str> = level
            .visible_elements()
            .iter()
            .map(|&e| d.graph.label(e))
            .collect();
        println!("  level {i} ({:>2}): {}", level.size(), names.join(", "));
    }

    // How much work the summary saves across the 20-query XMark workload.
    let summary = s.summarize(10, Algorithm::Balance)?;
    let mut base = 0usize;
    let mut with = 0usize;
    for q in &d.queries {
        base += best_first_cost(&d.graph, q, CostModel::SiblingScan).cost;
        with += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
    }
    println!(
        "\navg query-discovery cost: best-first {:.2} -> with summary {:.2} ({:.0}% saved)",
        base as f64 / d.queries.len() as f64,
        with as f64 / d.queries.len() as f64,
        (1.0 - with as f64 / base as f64) * 100.0
    );
    Ok(())
}
