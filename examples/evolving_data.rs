//! Watch a summary evolve with the database (the paper's Table 5 story):
//! the MiMI-style dataset grows from April 2004 to January 2006, with
//! protein-domain data imported in October 2005 — the summary stays stable
//! under same-distribution growth and shifts only when the distribution
//! genuinely changes.
//!
//! ```text
//! cargo run --release --example evolving_data
//! ```

use schema_summary::prelude::*;
use schema_summary::algo::SummaryMonitor;
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_discovery::agreement::agreement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deployment would run the monitor on a schedule; here the three
    // archived versions stand in for three scheduled refreshes.
    let (graph, _, _) = mimi::schema(Version::Apr04);
    let mut monitor = SummaryMonitor::new(10, Algorithm::Balance);
    let mut selections = Vec::new();
    let mut previous: Option<(SchemaStats, SchemaFingerprint)> = None;
    for &version in &Version::ALL {
        let (g, stats, handles) = mimi::schema(version);
        assert_eq!(g, graph, "the schema itself never changes");
        let report = monitor.refresh(&graph, &stats)?;
        let names: Vec<&str> = report.selection.iter().map(|&e| graph.label(e)).collect();
        let fp = SchemaFingerprint::of_annotated(&graph, &stats);
        println!(
            "{:<8} {:>6.2}M data elements, size-10 summary: {}",
            version.name(),
            stats.total_card() / 1e6,
            names.join(", ")
        );
        println!("         annotated fingerprint {fp}");
        if report.changed {
            // `entered`/`left` arrive in element-id order, so this line is
            // byte-for-byte reproducible across runs.
            println!(
                "         summary CHANGED: +{:?} -{:?}",
                report.entered.iter().map(|&e| graph.label(e)).collect::<Vec<_>>(),
                report.left.iter().map(|&e| graph.label(e)).collect::<Vec<_>>()
            );
        }
        // The same delta a serving layer would use to decide whether its
        // cached summaries for the old fingerprint are still valid.
        if let Some((old_stats, old_fp)) = previous.take() {
            let delta = SchemaDelta::compute(&graph, &old_stats, &graph, &stats);
            println!(
                "         vs previous: {} cardinality changes → {}",
                delta.changed_cardinalities.len(),
                if delta.is_empty() { "cache stays warm" } else { "invalidate old entries" }
            );
            assert_eq!(old_fp, delta.old_fingerprint);
        }
        previous = Some((stats.clone(), fp));
        let domain = handles.get("domain");
        if stats.card(domain) > 0.0 {
            println!("         (domain data present: {:.0} domains)", stats.card(domain));
        }
        selections.push(report.selection);
    }
    println!(
        "\nmonitor: {} refreshes, {} changes",
        monitor.refreshes(),
        monitor.changes()
    );

    println!("\npairwise summary agreement:");
    let labels = ["Apr 04", "Jan 05", "Now"];
    for i in 0..selections.len() {
        for j in (i + 1)..selections.len() {
            println!(
                "  {:<7} vs {:<7} {:>4.0}%",
                labels[i],
                labels[j],
                agreement(&selections[i], &selections[j]) * 100.0
            );
        }
    }
    println!(
        "\nGrowth that follows the existing distribution leaves the summary\n\
         untouched; the October 2005 domain import is a real distribution\n\
         change, and the summary adapts — which the paper argues is exactly\n\
         the desired behaviour (Section 3.3)."
    );
    Ok(())
}
