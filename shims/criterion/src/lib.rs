//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `Bencher::iter`.
//!
//! Like the real crate it distinguishes two modes: under `cargo bench` the
//! runner samples each benchmark and reports mean wall-clock time; under
//! `cargo test` (no `--bench` argument) each benchmark body runs exactly
//! once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: !std::env::args().any(|a| a == "--bench"),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Upper-bound the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&name, self.criterion.test_mode, samples, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&name, self.criterion.test_mode, samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    test_mode: bool,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time. In test mode
    /// the payload runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iterations = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // One warm-up, then time a batch sized to take measurable time.
        black_box(f());
        let started = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(f());
            iterations += 1;
            if started.elapsed() > Duration::from_millis(200) || iterations >= 1000 {
                break;
            }
        }
        self.elapsed += started.elapsed();
        self.iterations += iterations;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        test_mode,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    if test_mode {
        f(&mut bencher);
        println!("test-mode bench {name}: ok");
        return;
    }
    for _ in 0..samples.min(3) {
        f(&mut bencher);
    }
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!("bench {name}: mean {mean:?} over {} iterations", bencher.iterations);
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
