//! Offline stand-in for `serde_json`.
//!
//! Converts the serde shim's [`Value`] tree to and from JSON text. Supports
//! everything this repository serializes: objects, arrays, strings with
//! escapes, integers (kept exact up to `u64`/`i64`), and floats rendered via
//! Rust's shortest-round-trip `Display`.

pub use serde::Value;

use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a [`Value`] without binding it to a type.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ------------------------------------------------------------- rendering

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xd800) << 10)
                                        + (second.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                            continue;
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "invalid escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n\"there\"").unwrap(), "\"hi\\n\\\"there\\\"\"");
        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(String, usize)> = vec![("a".into(), 1), ("b".into(), 2)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[\"a\",1],[\"b\",2]]");
        let back: Vec<(String, usize)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects() {
        let v = parse(r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn pretty_prints() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
