//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde implementation under `shims/`. This proc-macro
//! crate provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! data shapes this repository actually uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 serializes transparently, like serde newtypes),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics, lifetimes, and `#[serde(...)]` attributes are not supported —
//! the macro panics with a clear message if it meets one, so an unsupported
//! type fails at compile time rather than misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(it: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next(); // '#'
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde shim derive: malformed attribute near {other:?}"),
        }
    }
}

fn skip_visibility(it: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next(); // pub(crate) etc.
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum keyword, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::NamedStruct(vec![])),
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Field names of a named-field body. Types are skipped token-wise, tracking
/// `<...>` nesting so commas inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        let field = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after `{field}`, found {other:?}"),
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        for tok in it.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                panic!("serde shim derive: explicit discriminants are not supported");
            }
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__o.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__o)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("{f}: __b_{f}")).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value(__b_{f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__o, \"{f}\")?"))
                .collect();
            format!(
                "let __o = ::serde::de::as_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = ::serde::de::as_array(__v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __a = ::serde::de::as_array(__inner, \"{name}::{vname}\", {n})?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}},\n",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de::field(__o2, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __o2 = ::serde::de::as_object(__inner, \"{name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}},\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__k, __inner) = &__o[0];\n\
                         match __k.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"expected {name} variant\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
