//! Offline stand-in for `proptest`.
//!
//! Runs each property as a deterministic randomized test: the RNG is seeded
//! from the test name, every case draws fresh inputs from the declared
//! strategies, and `prop_assert!`-style macros panic with context on
//! failure. No shrinking — a failing case prints its inputs via the assert
//! message instead.
//!
//! Supported surface (what this repository uses): `proptest! {}` with
//! optional `#![proptest_config(...)]`, integer-range strategies, `any<T>`,
//! tuple strategies, `prop_map`, `prop::collection::vec`, simple
//! regex-string strategies (`"[a-z]{1,8}"`, `".{0,300}"`), `Just`, and
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.

use std::ops::{Range, RangeInclusive};

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug)]
pub struct Reject;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// The deterministic RNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name), so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: state | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (retries a bounded number of
    /// times, then panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// A strategy always yielding a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------ integer strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

// -------------------------------------------------------------- any::<T>()

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 41) as i32 - 20;
        (unit * 2.0 - 1.0) * 10f64.powi(exp)
    }
}

/// The strategy behind [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

// ------------------------------------------------------------ collections

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------- regex-like &str input

/// `&str` strategies: a pragmatic regex subset — sequences of `.`, `[...]`
/// character classes, and literal characters, each with an optional `{m,n}`,
/// `{m}`, `*`, `+`, or `?` quantifier.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let span = (*max - *min) as u64 + 1;
            let count = *min + (rng.next_u64() % span) as usize;
            for _ in 0..count {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

enum PatternAtom {
    Any,
    Literal(char),
    Class(Vec<char>),
}

impl PatternAtom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            PatternAtom::Literal(c) => *c,
            PatternAtom::Class(chars) => chars[(rng.next_u64() % chars.len() as u64) as usize],
            PatternAtom::Any => {
                // Printable ASCII, weighted to include some whitespace.
                let roll = rng.next_u64() % 100;
                if roll < 5 {
                    ['\t', '\n', ' '][(roll % 3) as usize]
                } else {
                    char::from(b' ' + (rng.next_u64() % 95) as u8)
                }
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<(PatternAtom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => PatternAtom::Any,
            '\\' => PatternAtom::Literal(unescape(chars.next().unwrap_or('\\'))),
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            let c = unescape(chars.next().unwrap_or('\\'));
                            set.push(c);
                            prev = Some(c);
                        }
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let start = prev.take().expect("checked");
                            let end = match chars.next() {
                                Some('\\') => unescape(chars.next().unwrap_or('\\')),
                                Some(e) => e,
                                None => panic!("unterminated range in {pattern:?}"),
                            };
                            for code in (start as u32 + 1)..=(end as u32) {
                                if let Some(c) = char::from_u32(code) {
                                    set.push(c);
                                }
                            }
                        }
                        Some(c) => {
                            set.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                PatternAtom::Class(set)
            }
            c => PatternAtom::Literal(c),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in {pattern:?}");
        atoms.push((atom, min, max));
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

// ----------------------------------------------------------------- macros

/// Declare property tests. Each function parameter draws from its strategy;
/// the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __ok: u32 = 0;
            let mut __rejected: u32 = 0;
            while __ok < __config.cases {
                // The immediately-called closure gives `prop_assume!` a
                // `?`-style early exit without a labelled block.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::Reject> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __ok += 1,
                    ::std::result::Result::Err($crate::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.max_global_rejects,
                            "too many prop_assume! rejections ({} cases passed)",
                            __ok
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Assert inside a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Reject the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Reject);
        }
    };
}

/// The customary glob import for proptest users.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn tuples_and_map((x, y) in (0u64..100, 0u64..100).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(y >= x);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn regex_subset(s in "[a-c]{2,4}", t in ".{0,10}", v in prop::collection::vec("[xy]{1,2}", 1..4)) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 10);
            prop_assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
