//! Offline stand-in for `rand`.
//!
//! Implements the small slice of the rand API this repository uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and [`RngExt`] with
//! `random::<T>()` and `random_range(range)`. The generator is a
//! xoshiro256++ seeded via splitmix64 — deterministic for a given seed,
//! which the datasets rely on for reproducible synthetic instances.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw output.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring rand's `Rng` extension trait.
pub trait RngExt: RngCore {
    /// Draw a uniformly distributed value.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draw `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into four non-zero words.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-1..=1);
            assert!((-1..=1).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
