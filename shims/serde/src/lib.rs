//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serde implementation. Instead of serde's visitor-based data
//! model, this shim serializes through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * the companion `serde_json` shim converts [`Value`] to and from JSON
//!   text.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the sibling
//! `serde_derive` shim and supports named structs, tuple structs (arity 1
//! is transparent, like serde newtypes), and externally tagged enums —
//! exactly the shapes used in this repository.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned JSON-like value: the interchange format of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other shapes or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization errors and the helpers the derive macro generates calls
/// to.
pub mod de {
    use super::{Deserialize, Value};
    use std::fmt;

    /// A deserialization error with a human-readable message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom(msg: impl fmt::Display) -> Self {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Expect an object, with `what` naming the target type in errors.
    pub fn as_object<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(o) => Ok(o),
            other => Err(Error::custom(format!("expected object for {what}, found {other:?}"))),
        }
    }

    /// Expect an array of exactly `n` elements.
    pub fn as_array<'v>(v: &'v Value, what: &str, n: usize) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(a) if a.len() == n => Ok(a),
            Value::Array(a) => Err(Error::custom(format!(
                "expected {n} elements for {what}, found {}",
                a.len()
            ))),
            other => Err(Error::custom(format!("expected array for {what}, found {other:?}"))),
        }
    }

    /// Fetch and deserialize a named field. Missing keys deserialize from
    /// `null` so `Option` fields default to `None`.
    pub fn field<T: Deserialize>(o: &[(String, Value)], name: &str) -> Result<T, Error> {
        match o.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`"))),
        }
    }
}

// ------------------------------------------------------------- Serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

fn map_key(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (map_key(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (map_key(k.to_value()), v.to_value()))
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ----------------------------------------------------------- Deserialize

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::custom(format!("expected bool, found {v:?}")))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| de::Error::custom(format!("expected unsigned int, found {v:?}")))?;
                <$t>::try_from(u)
                    .map_err(|_| de::Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let i: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| de::Error::custom(format!("{u} out of range for i64")))?,
                    _ => return Err(de::Error::custom(format!("expected int, found {v:?}"))),
                };
                <$t>::try_from(i)
                    .map_err(|_| de::Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| de::Error::custom(format!("expected number, found {v:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::custom(format!("expected char, found {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom(format!("expected single char, found {s:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom(format!("expected string, found {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let a = de::as_array(v, "tuple", $len)?;
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys parse back from their string form.
pub trait FromMapKey: Sized {
    /// Parse a map key rendered by serialization.
    fn from_map_key(key: &str) -> Result<Self, de::Error>;
}

impl FromMapKey for String {
    fn from_map_key(key: &str) -> Result<Self, de::Error> {
        Ok(key.to_string())
    }
}

macro_rules! from_map_key_num {
    ($($t:ty),*) => {$(
        impl FromMapKey for $t {
            fn from_map_key(key: &str) -> Result<Self, de::Error> {
                key.parse()
                    .map_err(|_| de::Error::custom(format!("bad numeric map key {key:?}")))
            }
        }
    )*};
}
from_map_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: FromMapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let o = de::as_object(v, "map")?;
        o.iter()
            .map(|(k, val)| Ok((K::from_map_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: FromMapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let o = de::as_object(v, "map")?;
        o.iter()
            .map(|(k, val)| Ok((K::from_map_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
