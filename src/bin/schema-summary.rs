//! `schema-summary` — summarize a schema from the command line.
//!
//! ```text
//! schema-summary inspect   (--xsd FILE | --ddl FILE) [--xml FILE]
//! schema-summary summarize (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
//!                          [--algorithm balance|importance|coverage]
//!                          [--levels N,M,...] [--dot OUT] [--json OUT]
//! schema-summary discover  (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
//!                          --query label1,label2,...
//! schema-summary export    (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
//!                          [--algorithm A] [--format json|md] [--out FILE]
//! schema-summary serve     (--xsd FILE | --ddl FILE) [--xml FILE]
//!                          [--requests FILE] [--cache N] [--store-dir DIR]
//!                          [--store-max-bytes N] [--delta-max-fraction F]
//!                          [--listen ADDR] [--http ADDR] [--peer URL]...
//!                          [--workers N] [--queue N] [--max-conns N]
//!                          [--timeout-ms N] [--log-requests true]
//! schema-summary route     --http ADDR --node URL [--node URL]...
//!                          [--retries N] [--retry-backoff-ms N]
//!                          [--probe-interval-ms N] [--eject-after N]
//!                          [--max-conns N] [--timeout-ms N]
//!                          [--log-requests true]
//! ```
//!
//! Schemas come from an XSD subset or SQL DDL; statistics come from an XML
//! instance (`--xml`) when given, and default to uniform (schema-driven)
//! otherwise. `summarize` prints the summary outline and can export
//! Graphviz DOT and JSON; `discover` compares query-discovery costs with
//! and without the summary; `export` emits the condensed machine-readable
//! summary (the same shape `GET /v1/export/:schema` serves); `serve`
//! answers a JSONL request stream from the caching service layer and
//! reports per-request latency plus cache statistics — or, with
//! `--listen`/`--http`, serves the line-delimited JSON protocol over TCP
//! and/or HTTP/1.1 with a worker pool, bounded-queue load shedding,
//! per-request timeouts, and a connection cap. `--store-dir` adds a
//! persistent artifact tier: computed matrices and summaries are spilled
//! to disk and rehydrated on restart; `--store-max-bytes` caps it with
//! oldest-first eviction. Requests may be flat
//! (`{"k":10}`), multi-level (`{"levels":[12,6,3]}`), or drill-downs
//! (`{"levels":[12,6,3],"expand":{"level":1,"group":0}}`).

use schema_summary::prelude::*;
use schema_summary_io::{
    parse_ddl, parse_xml_instance, parse_xsd, schema_to_dot, schema_to_xsd, summary_to_dot,
    summary_to_markdown,
};
use schema_summary_service::{
    ClusterRouter, HttpConfig, HttpServer, ProbeConfig, RouterConfig, ServedReply, ServerConfig,
    ServiceConfig, SummaryRequest, SummaryServer, SummaryService,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    // Piping output into `head` closes stdout early; treat the resulting
    // broken pipe as a normal exit instead of a panic (Rust has no default
    // SIGPIPE handling).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if is_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".into());
    let opts = parse_opts(args)?;
    match command.as_str() {
        "inspect" => inspect(&opts),
        "summarize" => summarize(&opts),
        "discover" => discover(&opts),
        "export" => export(&opts),
        "serve" => serve(&opts),
        "route" => route(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}'; try 'schema-summary help'"
        )),
    }
}

const USAGE: &str = "\
schema-summary — automatic schema summarization (Yu & Jagadish, VLDB 2006)

USAGE:
  schema-summary inspect   (--xsd FILE | --ddl FILE) [--xml FILE]
  schema-summary summarize (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
                           [--algorithm balance|importance|coverage]
                           [--levels N,M,...] [--dot OUT] [--json OUT]
  schema-summary discover  (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
                           --query label1,label2,...
  schema-summary export    (--xsd FILE | --ddl FILE) [--xml FILE] [-k N]
                           [--algorithm A] [--format json|md] [--out FILE]
  schema-summary serve     (--xsd FILE | --ddl FILE) [--xml FILE]
                           [--ddl-next FILE]
                           [--requests FILE] [--cache N] [--store-dir DIR]
                           [--store-max-bytes N] [--delta-max-fraction F]
                           [--listen ADDR] [--http ADDR] [--peer URL]...
                           [--workers N] [--queue N] [--max-conns N]
                           [--timeout-ms N] [--log-requests true]
  schema-summary route     --http ADDR --node URL [--node URL]...
                           [--retries N] [--retry-backoff-ms N]
                           [--probe-interval-ms N] [--eject-after N]
                           [--max-conns N] [--timeout-ms N]
                           [--log-requests true]

OPTIONS:
  --xsd FILE        schema from an XML-Schema subset
  --ddl FILE        schema from SQL CREATE TABLE statements
  --xml FILE        database instance (XML) for cardinality statistics
  -k N              summary size (default 5)
  --algorithm A     balance (default) | importance | coverage
  --levels N,M,...  build a multi-level summary with these level sizes
  --explain true    print per-element evidence (ranks, groups, dominance)
  --dot FILE        write the summary as Graphviz DOT
  --md FILE         write the summary as Markdown documentation
  --json FILE       write the summary as JSON
  --query LABELS    comma-separated element labels the user seeks
  --format F        (export) json (default) | md — condensed summary with
                    per-element importance and cardinality, the same shape
                    served at GET /v1/export/:schema
  --out FILE        (export) write to FILE instead of stdout
  --xsd-out FILE    (inspect) export the schema back to the XSD subset
  --requests FILE   (serve) JSONL request stream, one object per line:
                    {\"algorithm\":\"balance\",\"k\":10} for a flat summary,
                    {\"levels\":[12,6,3]} for a multi-level one, or
                    {\"levels\":[12,6,3],\"expand\":{\"level\":1,\"group\":0}}
                    to drill one group down a level; default stdin
  --cache N         (serve) result-cache capacity (default 1024)
  --store-dir DIR   (serve) persistent artifact tier: spill computed
                    matrices and summaries to DIR and rehydrate them on
                    restart (corrupt files are recomputed, never fatal)
  --store-max-bytes N
                    (serve) cap the artifact tier at N bytes; over the
                    quota, the oldest artifacts are evicted first
  --delta-max-fraction F
                    (serve) warm-refresh schema deltas that touch at most
                    this fraction of the elements; larger deltas fall back
                    to cold invalidation (default 0.25; must be in (0, 1])
  --ddl-next FILE   (serve) register an evolved version of the schema
                    (SQL DDL) under '<name>-next', so POST /admin/refresh
                    {\"old\":\"<name>\",\"new\":\"<name>-next\"} can migrate
                    cached results between the two versions warm
  --listen ADDR     (serve) serve line-delimited JSON over TCP on ADDR
                    (e.g. 127.0.0.1:7878) instead of a batch stream
  --http ADDR       (serve) serve the HTTP/1.1 API on ADDR (e.g.
                    127.0.0.1:8080): POST /v1/summary|/v1/levels|/v1/expand,
                    GET /v1/export/:schema, /metrics, /healthz,
                    /admin/cache, POST /admin/evict; may be combined
                    with --listen to run both front-ends on one cache
  --workers N       (serve, socket) worker threads per server (default 4)
  --queue N         (serve, socket) pending-request bound; excess requests
                    get a structured 'overloaded' error (default 64)
  --max-conns N     (serve, socket) concurrent connection cap (default 64)
  --timeout-ms N    (serve, socket) per-request wall-clock budget in
                    milliseconds (default 10000)
  --log-requests true
                    (serve --http, route) one-line audit record per
                    request on stderr: peer, method, target, status,
                    latency
  --peer URL        (serve --http) peer node for cross-node invalidation:
                    locally initiated POST /admin/evict and /admin/refresh
                    are re-broadcast to each peer; repeatable
  --node URL        (route) cluster node behind the router; repeatable,
                    same list (any order) on every router
  --retries N       (route) extra nodes tried after the rendezvous owner
                    fails or sheds, next-ranked first (default 2)
  --retry-backoff-ms N
                    (route) backoff before the n-th failover attempt is
                    n * this many milliseconds (default 20)
  --probe-interval-ms N
                    (route) health-probe cadence per node (default 1000)
  --eject-after N   (route) consecutive failures before a node leaves the
                    rotation until a probe readmits it (default 3)
";

fn parse_opts(args: impl Iterator<Item = String>) -> Result<HashMap<String, String>, String> {
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if !flag.starts_with('-') {
            return Err(format!("unexpected argument '{flag}'"));
        }
        let key = flag.trim_start_matches('-').to_string();
        let value = args
            .next()
            .ok_or_else(|| format!("flag '{flag}' needs a value"))?;
        // Repeatable flags (--node, --peer) accumulate comma-separated;
        // consumers that only admit one value parse the joined string and
        // fail loudly rather than silently dropping earlier occurrences.
        match opts.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut prior) => {
                let joined = prior.get_mut();
                joined.push(',');
                joined.push_str(&value);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
            }
        }
    }
    Ok(opts)
}

/// Split a repeatable flag's accumulated value (`a,b,c`) into its items.
fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Parse and validate `--delta-max-fraction`: the warm-refresh guard is a
/// fraction of the schema's elements, so NaN and anything outside
/// `(0, 1]` is a configuration mistake, rejected at startup rather than
/// silently disabling the guard at request time.
fn delta_fraction_of(opts: &HashMap<String, String>) -> Result<f64, String> {
    match opts.get("delta-max-fraction") {
        None => Ok(ServiceConfig::default().delta_max_fraction),
        Some(v) => {
            let f = v
                .parse::<f64>()
                .map_err(|_| format!("invalid --delta-max-fraction value '{v}'"))?;
            // `f > 0.0` is false for NaN, so this also rejects NaN.
            if f > 0.0 && f <= 1.0 {
                Ok(f)
            } else {
                Err(format!(
                    "--delta-max-fraction must be in (0, 1], got '{v}'"
                ))
            }
        }
    }
}

fn load_schema(opts: &HashMap<String, String>) -> Result<SchemaGraph, String> {
    match (opts.get("xsd"), opts.get("ddl")) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_xsd(&text).map_err(|e| format!("{path}: {e}"))
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_ddl(&text, "db").map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("exactly one of --xsd or --ddl is required".into()),
    }
}

fn load_stats(graph: &SchemaGraph, opts: &HashMap<String, String>) -> Result<SchemaStats, String> {
    match opts.get("xml") {
        None => Ok(SchemaStats::uniform(graph)),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let data = parse_xml_instance(graph, &text).map_err(|e| format!("{path}: {e}"))?;
            let violations = check_conformance(graph, &data);
            if !violations.is_empty() {
                return Err(format!(
                    "{path}: instance does not conform ({} violations; first: {})",
                    violations.len(),
                    violations[0]
                ));
            }
            annotate_schema(graph, &data).map_err(|e| e.to_string())
        }
    }
}

fn algorithm_of(opts: &HashMap<String, String>) -> Result<Algorithm, String> {
    match opts.get("algorithm").map(String::as_str) {
        None | Some("balance") => Ok(Algorithm::Balance),
        Some("importance") => Ok(Algorithm::MaxImportance),
        Some("coverage") => Ok(Algorithm::MaxCoverage),
        Some(other) => Err(format!("unknown algorithm '{other}'")),
    }
}

fn size_of(opts: &HashMap<String, String>) -> Result<usize, String> {
    match opts.get("k") {
        None => Ok(5),
        Some(v) => v.parse().map_err(|_| format!("invalid -k value '{v}'")),
    }
}

fn inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_schema(opts)?;
    let stats = load_stats(&graph, opts)?;
    let metrics = schema_summary::core::GraphMetrics::compute(&graph);
    println!("{metrics}");
    println!("{:.0} data elements", stats.total_card());
    print!("{}", graph.outline());
    if let Some(path) = opts.get("xsd-out") {
        std::fs::write(path, schema_to_xsd(&graph)).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    let mut s = Summarizer::new(&graph, &stats);
    let imp = s.importance().clone();
    println!("\ntop elements by importance:");
    for &e in imp.ranked(&graph).iter().take(10) {
        println!("  {:<40} {:>12.1}", graph.label_path(e), imp.score(e));
    }
    Ok(())
}

fn summarize(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_schema(opts)?;
    let stats = load_stats(&graph, opts)?;
    let k = size_of(opts)?;
    let algorithm = algorithm_of(opts)?;
    let mut s = Summarizer::new(&graph, &stats);

    if let Some(levels) = opts.get("levels") {
        let sizes: Vec<usize> = levels
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| format!("bad level size '{v}'"))
            })
            .collect::<Result<_, _>>()?;
        let ml = s
            .multi_level(&sizes, algorithm)
            .map_err(|e| e.to_string())?;
        for (i, level) in ml.levels().iter().enumerate() {
            println!("--- level {i} (size {}) ---", level.size());
            print!("{}", level.outline(&graph));
        }
        return Ok(());
    }

    let summary = s.summarize(k, algorithm).map_err(|e| e.to_string())?;
    print!("{}", summary.outline(&graph));
    println!(
        "importance R = {:.3}, coverage C = {:.3}",
        s.selection_importance(&summary.visible_elements()),
        s.selection_coverage(&summary.visible_elements())
    );
    if opts.get("explain").map(String::as_str) == Some("true") {
        print!("{}", s.explain(&summary).render());
    }
    if let Some(path) = opts.get("dot") {
        std::fs::write(path, summary_to_dot(&graph, &summary))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("md") {
        std::fs::write(path, summary_to_markdown(&graph, &summary))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("json") {
        let json = schema_summary_io::export::to_json(&summary).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    // Also offer the full-schema DOT for side-by-side rendering.
    if opts.get("dot").is_some() {
        let _ = schema_to_dot(&graph); // validated render path
    }
    Ok(())
}

fn discover(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_schema(opts)?;
    let stats = load_stats(&graph, opts)?;
    let k = size_of(opts)?;
    let labels: Vec<&str> = opts
        .get("query")
        .ok_or("discover requires --query label1,label2,...")?
        .split(',')
        .map(str::trim)
        .collect();
    let q = QueryIntention::from_labels(&graph, "cli", &labels).map_err(|e| e.to_string())?;

    let mut s = Summarizer::new(&graph, &stats);
    let summary = s
        .summarize(k, Algorithm::Balance)
        .map_err(|e| e.to_string())?;
    let lin = schema_summary::discovery::linear_scan_cost(&graph, &q);
    let df = depth_first_cost(&graph, &q);
    let bf = breadth_first_cost(&graph, &q);
    let best = best_first_cost(&graph, &q, CostModel::SiblingScan);
    let with = summary_cost(&graph, &summary, &q, CostModel::SiblingScan);
    println!("query {:?}", labels);
    println!("  linear scan    {:>5}", lin.cost);
    println!("  depth-first    {:>5}", df.cost);
    println!("  breadth-first  {:>5}", bf.cost);
    println!("  best-first     {:>5}", best.cost);
    println!("  with summary   {:>5}  (size {k})", with.cost);
    if best.cost > 0 {
        println!(
            "  saving         {:>4.0}%",
            (1.0 - with.cost as f64 / best.cost as f64) * 100.0
        );
    }
    Ok(())
}

/// Batch driver for the serving layer: load one schema, register it with
/// a [`SummaryService`], then answer a JSONL request stream (file or
/// stdin), printing per-request latency, cache disposition, and final
/// cache statistics.
fn serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = Arc::new(load_schema(opts)?);
    let stats = Arc::new(load_stats(&graph, opts)?);
    let capacity = match opts.get("cache") {
        None => 1024,
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --cache value '{v}'"))?,
    };
    let store_dir = opts.get("store-dir").map(std::path::PathBuf::from);
    let store_max_bytes = match opts.get("store-max-bytes") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("invalid --store-max-bytes value '{v}'"))?,
        ),
    };
    if store_max_bytes.is_some() && store_dir.is_none() {
        return Err("--store-max-bytes requires --store-dir".into());
    }
    let delta_max_fraction = delta_fraction_of(opts)?;
    let service = SummaryService::try_new(ServiceConfig {
        cache_capacity: capacity,
        store_dir: store_dir.clone(),
        store_max_bytes,
        delta_max_fraction,
        ..Default::default()
    })
    .map_err(|e| format!("--store-dir: {e}"))?;
    let name = graph.label(graph.root()).to_string();
    let fingerprint = service.register_named(&name, Arc::clone(&graph), stats);
    match &store_dir {
        Some(dir) => println!(
            "serving schema '{name}' (fingerprint {fingerprint}, cache capacity {capacity}, store {})",
            dir.display()
        ),
        None => println!(
            "serving schema '{name}' (fingerprint {fingerprint}, cache capacity {capacity})"
        ),
    }
    if let Some(path) = opts.get("ddl-next") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let next = Arc::new(parse_ddl(&text, "db").map_err(|e| format!("{path}: {e}"))?);
        let next_stats = Arc::new(SchemaStats::uniform(&next));
        let next_name = format!("{name}-next");
        let next_fp = service.register_named(&next_name, Arc::clone(&next), next_stats);
        println!("registered evolved schema '{next_name}' (fingerprint {next_fp})");
    }

    if opts.get("listen").is_some() || opts.get("http").is_some() {
        return serve_socket(Arc::new(service), opts);
    }

    let input = match opts.get("requests") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        }
    };

    // One batch entry per request line; a bad line reports its error and
    // the batch keeps going, so the driver always reaches the stats line.
    let mut served = 0usize;
    let mut failed = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let n = served + failed + 1;
        let request: SummaryRequest = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                failed += 1;
                println!("#{n} error: request line {}: {e}", lineno + 1);
                continue;
            }
        };
        let started = Instant::now();
        match service.handle_request(&request) {
            Ok(ServedReply::Flat(answer)) => {
                let elapsed = started.elapsed();
                served += 1;
                println!(
                    "#{n} alg={} k={} {} {:>9.1?}  {}",
                    answer.result.algorithm,
                    answer.result.k,
                    if answer.from_cache { "hit " } else { "miss" },
                    elapsed,
                    answer.result.labels.join(", ")
                );
            }
            Ok(ServedReply::MultiLevel(answer)) => {
                let elapsed = started.elapsed();
                served += 1;
                let view = &answer.result.view;
                let sizes: Vec<String> = view.sizes.iter().map(|s| s.to_string()).collect();
                println!(
                    "#{n} alg={} levels={} {} {:>9.1?}  {}",
                    view.algorithm,
                    sizes.join(","),
                    if answer.from_cache { "hit " } else { "miss" },
                    elapsed,
                    view.levels
                        .last()
                        .map(|coarsest| {
                            coarsest
                                .groups
                                .iter()
                                .map(|g| g.representative.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .unwrap_or_default()
                );
            }
            Ok(ServedReply::Expansion(answer)) => {
                let elapsed = started.elapsed();
                served += 1;
                let exp = &answer.result;
                let contents: Vec<&str> = if exp.level == 0 {
                    exp.elements.iter().map(|e| e.as_str()).collect()
                } else {
                    exp.children
                        .iter()
                        .map(|g| g.representative.as_str())
                        .collect()
                };
                println!(
                    "#{n} alg={} expand l{}g{} {} {:>9.1?}  {} -> {}",
                    exp.algorithm,
                    exp.level,
                    exp.group,
                    if answer.from_cache { "hit " } else { "miss" },
                    elapsed,
                    exp.representative,
                    contents.join(", ")
                );
            }
            Err(e) => {
                failed += 1;
                println!("#{n} error: {e}");
            }
        }
    }

    let cache = service.cache_stats();
    println!(
        "\n{served} served, {failed} failed; cache: {} hits, {} misses ({:.0}% hit rate), {} evictions, {} entries",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.evictions,
        cache.entries
    );
    if store_dir.is_some() {
        println!(
            "store: {} rehydrated, {} written, {} corrupt, {} matrices rebuilt",
            cache.disk_hits + cache.matrices_rehydrated,
            cache.disk_writes,
            cache.disk_corrupt,
            cache.matrices_computed
        );
    }
    Ok(())
}

/// Socket mode: front the service with a TCP server speaking the
/// line-delimited JSON protocol (`--listen`), an HTTP/1.1 server
/// (`--http`), or both on one shared cache, and block until the process
/// is killed. Overload is shed with structured `overloaded` errors
/// (HTTP: `503`); slow requests are answered with `timeout` errors
/// (HTTP: `504`) while the computation finishes and warms the cache.
fn serve_socket(
    service: Arc<SummaryService>,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        match opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --{key} value '{v}'")),
        }
    };
    let defaults = ServerConfig::default();
    let timeout_ms = parse_usize("timeout-ms", defaults.request_timeout.as_millis() as usize)?;
    let workers = parse_usize("workers", defaults.workers)?;
    let queue_capacity = parse_usize("queue", defaults.queue_capacity)?;
    let max_connections = parse_usize("max-conns", defaults.max_connections)?;
    let request_timeout = std::time::Duration::from_millis(timeout_ms as u64);

    let http_server = match opts.get("http") {
        None => None,
        Some(addr) => {
            let config = HttpConfig {
                workers,
                queue_capacity,
                max_connections,
                request_timeout,
                log_requests: opts.get("log-requests").map(String::as_str) == Some("true"),
                peers: opts.get("peer").map(|v| split_list(v)).unwrap_or_default(),
            };
            let server = HttpServer::bind(addr, Arc::clone(&service), config)
                .map_err(|e| format!("{addr}: {e}"))?;
            println!(
                "http on {} ({workers} workers, queue {queue_capacity}, {max_connections} connections max, {timeout_ms}ms timeout)",
                server.local_addr()
            );
            Some(server)
        }
    };

    if let Some(addr) = opts.get("listen") {
        let config = ServerConfig {
            workers,
            queue_capacity,
            max_connections,
            request_timeout,
        };
        let server =
            SummaryServer::bind(addr, service, config).map_err(|e| format!("{addr}: {e}"))?;
        println!(
            "listening on {} ({workers} workers, queue {queue_capacity}, {max_connections} connections max, {timeout_ms}ms timeout)",
            server.local_addr()
        );
        server.wait();
        return Ok(());
    }

    http_server
        .expect("socket mode requires --listen or --http")
        .wait();
    Ok(())
}

/// Cluster router mode: no schema is loaded and nothing is computed —
/// the process maps each request's schema identity onto its rendezvous
/// owner among the `--node`s and proxies it there, with rank-ordered
/// failover and background health probing. Blocks until killed.
fn route(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("http")
        .ok_or("route requires --http ADDR (e.g. --http 127.0.0.1:8000)")?;
    let nodes = opts
        .get("node")
        .map(|v| split_list(v))
        .unwrap_or_default();
    if nodes.is_empty() {
        return Err("route requires at least one --node URL".into());
    }
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --{key} value '{v}'")),
        }
    };
    let defaults = RouterConfig::default();
    let probe_defaults = ProbeConfig::default();
    let config = RouterConfig {
        nodes: nodes.clone(),
        max_connections: parse_u64("max-conns", defaults.max_connections as u64)? as usize,
        retries: parse_u64("retries", defaults.retries as u64)? as usize,
        retry_backoff: std::time::Duration::from_millis(parse_u64(
            "retry-backoff-ms",
            defaults.retry_backoff.as_millis() as u64,
        )?),
        request_timeout: std::time::Duration::from_millis(parse_u64(
            "timeout-ms",
            defaults.request_timeout.as_millis() as u64,
        )?),
        probe: ProbeConfig {
            interval: std::time::Duration::from_millis(parse_u64(
                "probe-interval-ms",
                probe_defaults.interval.as_millis() as u64,
            )?),
            eject_after: parse_u64("eject-after", u64::from(probe_defaults.eject_after))? as u32,
            timeout: probe_defaults.timeout,
        },
        log_requests: opts.get("log-requests").map(String::as_str) == Some("true"),
    };
    let retries = config.retries;
    let router = ClusterRouter::bind(addr.as_str(), config).map_err(|e| format!("{addr}: {e}"))?;
    println!(
        "routing on {} over {} nodes ({} retries): {}",
        router.local_addr(),
        nodes.len(),
        retries,
        nodes.join(", ")
    );
    router.wait();
    Ok(())
}

/// Emit the condensed machine-readable summary — schema name,
/// fingerprint, provenance, and per-element importance/cardinality — as
/// JSON (default) or markdown; the same shape `GET /v1/export/:schema`
/// serves.
fn export(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = Arc::new(load_schema(opts)?);
    let stats = Arc::new(load_stats(&graph, opts)?);
    let k = size_of(opts)?;
    let algorithm = algorithm_of(opts)?;
    let service = SummaryService::try_new(ServiceConfig::default()).map_err(|e| e.to_string())?;
    let name = graph.label(graph.root()).to_string();
    let fingerprint = service.register_named(&name, Arc::clone(&graph), stats);
    let summary = service
        .export_summary(fingerprint, algorithm, k)
        .map_err(|e| e.to_string())?;
    let text = match opts.get("format").map(String::as_str) {
        None | Some("json") => summary.to_json(),
        Some("md") | Some("markdown") => summary.to_markdown(),
        Some(other) => return Err(format!("unknown --format '{other}' (json or md)")),
    };
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_opts_pairs_flags_with_values() {
        let parsed =
            parse_opts(["--xsd", "a.xsd", "-k", "7"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(parsed["xsd"], "a.xsd");
        assert_eq!(parsed["k"], "7");
    }

    #[test]
    fn parse_opts_rejects_bare_arguments_and_dangling_flags() {
        assert!(parse_opts(["stray"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_opts(["--xsd"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn parse_opts_accumulates_repeated_flags() {
        let parsed = parse_opts(
            ["--node", "a:1", "--node", "b:2", "--node", "c:3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(parsed["node"], "a:1,b:2,c:3");
        assert_eq!(split_list(&parsed["node"]), vec!["a:1", "b:2", "c:3"]);
        assert_eq!(split_list(" a:1 , , b:2 "), vec!["a:1", "b:2"]);
    }

    #[test]
    fn delta_fraction_accepts_only_the_half_open_unit_interval() {
        assert_eq!(
            delta_fraction_of(&opts(&[])).unwrap(),
            ServiceConfig::default().delta_max_fraction
        );
        assert_eq!(
            delta_fraction_of(&opts(&[("delta-max-fraction", "0.5")])).unwrap(),
            0.5
        );
        assert_eq!(
            delta_fraction_of(&opts(&[("delta-max-fraction", "1")])).unwrap(),
            1.0
        );
        for bad in ["0", "-0.25", "1.5", "NaN", "inf", "-inf", "pumpkin"] {
            assert!(
                delta_fraction_of(&opts(&[("delta-max-fraction", bad)])).is_err(),
                "'{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn algorithm_names_resolve() {
        assert_eq!(algorithm_of(&opts(&[])).unwrap(), Algorithm::Balance);
        assert_eq!(
            algorithm_of(&opts(&[("algorithm", "importance")])).unwrap(),
            Algorithm::MaxImportance
        );
        assert_eq!(
            algorithm_of(&opts(&[("algorithm", "coverage")])).unwrap(),
            Algorithm::MaxCoverage
        );
        assert!(algorithm_of(&opts(&[("algorithm", "bogus")])).is_err());
    }

    #[test]
    fn size_parses_with_default() {
        assert_eq!(size_of(&opts(&[])).unwrap(), 5);
        assert_eq!(size_of(&opts(&[("k", "12")])).unwrap(), 12);
        assert!(size_of(&opts(&[("k", "x")])).is_err());
    }

    #[test]
    fn schema_loading_demands_exactly_one_source() {
        assert!(load_schema(&opts(&[])).is_err());
        assert!(load_schema(&opts(&[("xsd", "a"), ("ddl", "b")])).is_err());
        assert!(load_schema(&opts(&[("xsd", "/nonexistent/x.xsd")])).is_err());
    }
}
