//! # schema-summary
//!
//! Automatic schema summarization for relational and hierarchical
//! databases — a from-scratch Rust implementation of *Schema Summarization*
//! (Cong Yu & H. V. Jagadish, VLDB 2006).
//!
//! Complex schemas are hard to comprehend; a **schema summary** groups the
//! schema's elements under a handful of *abstract elements* chosen to be
//! important (well-connected, data-heavy) and to cover the schema broadly,
//! so that a user can understand the database at a glance and drill into
//! just the component they need.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | schema graphs, summaries, cardinality statistics |
//! | [`instance`] | data trees, conformance, the `annotateSchema` pass |
//! | [`algo`] | importance / affinity / coverage formulas and the three selection algorithms |
//! | [`discovery`] | the query-discovery cost metric and agreement measures |
//! | [`datasets`] | XMark, TPC-H and MiMI-style evaluation datasets |
//! | [`baselines`] | TWBK / CAFP ER-abstraction baselines |
//! | [`io`] | XSD / SQL-DDL / XML front-ends, DOT & JSON export |
//!
//! # Example
//!
//! ```
//! use schema_summary::prelude::*;
//!
//! // A schema: people with profiles, auctions with bidders.
//! let mut b = SchemaGraphBuilder::new("site");
//! let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
//! let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
//! b.add_child(person, "name", SchemaType::simple_str()).unwrap();
//! let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
//! let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
//! let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
//! b.add_value_link(bidder, person).unwrap();
//! let graph = b.build().unwrap();
//!
//! // Statistics from data (here: schema-only, uniform).
//! let stats = SchemaStats::uniform(&graph);
//!
//! // Summarize to 2 abstract elements.
//! let mut s = Summarizer::new(&graph, &stats);
//! let summary = s.summarize(2, Algorithm::Balance).unwrap();
//! assert_eq!(summary.size(), 2);
//! summary.validate(&graph).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use schema_summary_algo as algo;
pub use schema_summary_baselines as baselines;
pub use schema_summary_core as core;
pub use schema_summary_datasets as datasets;
pub use schema_summary_discovery as discovery;
pub use schema_summary_instance as instance;
pub use schema_summary_io as io;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use schema_summary_algo::{
        Algorithm, ImportanceConfig, ImportanceMode, PathConfig, Summarizer, SummarizerConfig,
    };
    pub use schema_summary_core::{
        AtomicType, ElementId, SchemaDelta, SchemaError, SchemaFingerprint, SchemaGraph,
        SchemaGraphBuilder, SchemaStats, SchemaSummary, SchemaType,
    };
    pub use schema_summary_discovery::{
        best_first_cost, breadth_first_cost, depth_first_cost, summary_cost, CostModel,
        DiscoveryCost, QueryIntention,
    };
    pub use schema_summary_instance::generate::{generate_instance, GeneratorConfig};
    pub use schema_summary_instance::{annotate_schema, check_conformance, DataTree, DataTreeBuilder};
}
