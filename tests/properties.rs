//! Property-based tests over randomly generated schemas and databases.
//!
//! Every invariant here is one the paper states or relies on: importance
//! mass conservation, affinity/coverage bounds, Definition 2
//! well-formedness for every algorithm's output, Theorem 1's swap
//! guarantee, and discovery completeness.

use proptest::prelude::*;
use schema_summary::prelude::*;
use schema_summary_algo::assignment::{assign_elements, summary_coverage};
use schema_summary_algo::{DominanceSet, PairMatrices};
use schema_summary_instance::generate::{generate_instance, GeneratorConfig};

/// A random schema graph: a structural tree over 2..=28 elements with a few
/// value links between composite elements, plus annotated statistics from a
/// random conformant instance.
fn arb_schema() -> impl Strategy<Value = (SchemaGraph, SchemaStats)> {
    (2usize..28, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic pseudo-random construction from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = SchemaGraphBuilder::new("root");
        let mut composites = vec![b.root()];
        let mut all = vec![b.root()];
        for i in 1..n {
            let parent = composites[(next() as usize) % composites.len()];
            let roll = next() % 4;
            let ty = match roll {
                0 => SchemaType::simple_str(),
                1 => SchemaType::set_of_rcd(),
                2 => SchemaType::rcd(),
                _ => SchemaType::simple_int(),
            };
            let id = b
                .add_child(parent, format!("e{i}"), ty.clone())
                .expect("parent is composite");
            if ty.is_composite() {
                composites.push(id);
            }
            all.push(id);
        }
        // A few value links between distinct composites.
        let n_links = (next() % 4) as usize;
        for _ in 0..n_links {
            if composites.len() < 2 {
                break;
            }
            let from = composites[(next() as usize) % composites.len()];
            let to = composites[(next() as usize) % composites.len()];
            let _ = b.add_value_link(from, to); // self/dup links rejected, fine
        }
        let graph = b.build().expect("valid construction");
        let data = generate_instance(
            &graph,
            &GeneratorConfig {
                seed,
                default_fanout: 3.0,
                max_nodes: 3_000,
                ..Default::default()
            },
        );
        let stats = annotate_schema(&graph, &data).expect("conformant by construction");
        (graph, stats)
    })
}

/// Rebuild `graph` element by element (ids are assigned in the same order,
/// since parents always predate children), optionally perturbing one
/// element's label or type along the way.
fn rebuild(
    graph: &SchemaGraph,
    relabel: Option<ElementId>,
    retype: Option<ElementId>,
    add_link: Option<(ElementId, ElementId)>,
) -> SchemaGraph {
    let mut b = SchemaGraphBuilder::with_root_type(
        graph.label(graph.root()),
        graph.ty(graph.root()).clone(),
    );
    let mut map = vec![b.root(); graph.len()];
    for e in graph.element_ids().skip(1) {
        let parent = map[graph.parent(e).expect("non-root").index()];
        let mut label = graph.label(e).to_string();
        if relabel == Some(e) {
            label.push('_');
        }
        let mut ty = graph.ty(e).clone();
        if retype == Some(e) {
            ty = flip_type(&ty);
        }
        map[e.index()] = b.add_child(parent, label, ty).expect("rebuild add");
    }
    for (f, t) in graph.value_links() {
        b.add_value_link(map[f.index()], map[t.index()])
            .expect("rebuild link");
    }
    if let Some((f, t)) = add_link {
        b.add_value_link(map[f.index()], map[t.index()])
            .expect("extra link");
    }
    b.build().expect("rebuild valid")
}

/// A minimal type change that keeps the element's child-bearing capacity
/// (simple stays simple, composite stays composite).
fn flip_type(ty: &SchemaType) -> SchemaType {
    match ty {
        SchemaType::Simple(AtomicType::Str) => SchemaType::simple_int(),
        SchemaType::Simple(_) => SchemaType::simple_str(),
        SchemaType::SetOf(inner) => SchemaType::SetOf(Box::new(flip_type(inner))),
        SchemaType::Rcd => SchemaType::choice(),
        SchemaType::Choice => SchemaType::rcd(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn importance_mass_is_conserved((graph, stats) in arb_schema()) {
        let r = schema_summary_algo::importance::compute_importance(
            &graph, &stats, &ImportanceConfig::default());
        let total = stats.total_card();
        prop_assert!((r.total() - total).abs() <= total.max(1.0) * 1e-6,
            "mass {} vs cardinality {}", r.total(), total);
        prop_assert!(r.converged);
        for e in graph.element_ids() {
            prop_assert!(r.score(e) >= -1e-9, "negative importance at {e}");
        }
    }

    #[test]
    fn affinity_and_coverage_bounds((graph, stats) in arb_schema()) {
        let m = PairMatrices::compute(&stats, &PathConfig::default());
        for a in graph.element_ids() {
            prop_assert_eq!(m.affinity(a, a), 1.0);
            prop_assert!((m.coverage(a, a) - stats.card(a)).abs() < 1e-9);
            for t in graph.element_ids() {
                let aff = m.affinity(a, t);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&aff),
                    "affinity {aff} out of range");
                let cov = m.coverage(a, t);
                prop_assert!(cov <= stats.card(t) + 1e-9,
                    "coverage {cov} exceeds cardinality {}", stats.card(t));
                prop_assert!(cov >= -1e-9);
            }
        }
    }

    #[test]
    fn every_algorithm_builds_valid_summaries((graph, stats) in arb_schema()) {
        let max_k = (graph.len() - 1).min(5);
        let mut s = Summarizer::new(&graph, &stats);
        for k in 1..=max_k {
            for alg in [Algorithm::Balance, Algorithm::MaxImportance, Algorithm::MaxCoverage] {
                let summary = s.summarize(k, alg).expect("summary builds");
                prop_assert!(summary.validate(&graph).is_ok(), "{alg:?} k={k}");
                prop_assert_eq!(summary.size(), k);
                prop_assert!(summary.is_full());
            }
        }
    }

    #[test]
    fn dominance_swap_never_lowers_coverage((graph, stats) in arb_schema()) {
        let m = PairMatrices::compute(&stats, &PathConfig::default());
        let ds = DominanceSet::compute(&graph, &stats, &m);
        for (dominator, dominated) in ds.pairs() {
            if dominator == graph.root() || dominated == graph.root() {
                continue;
            }
            let with_dominated = vec![dominated];
            let with_dominator = vec![dominator];
            let a1 = assign_elements(&graph, &m, &with_dominated);
            let a2 = assign_elements(&graph, &m, &with_dominator);
            let c1 = summary_coverage(&graph, &stats, &m, &with_dominated, &a1);
            let c2 = summary_coverage(&graph, &stats, &m, &with_dominator, &a2);
            prop_assert!(c2 >= c1 - 1e-9,
                "swap {} -> {} lowered coverage {c1} -> {c2}",
                graph.label(dominated), graph.label(dominator));
        }
    }

    #[test]
    fn discovery_always_completes((graph, stats) in arb_schema(), pick in any::<u64>()) {
        // A random 1-3 element intention.
        let n = graph.len() as u64;
        let targets: Vec<ElementId> = (0..=(pick % 3))
            .map(|i| ElementId(((pick.rotate_left(i as u32 * 7)) % n) as u32))
            .collect();
        let q = QueryIntention::from_elements("q", &targets);
        for r in [
            depth_first_cost(&graph, &q),
            breadth_first_cost(&graph, &q),
            best_first_cost(&graph, &q, CostModel::SiblingScan),
            best_first_cost(&graph, &q, CostModel::PathOnly),
        ] {
            prop_assert!(r.found_all);
            prop_assert!(r.cost <= graph.len());
        }
        // And with a summary.
        let mut s = Summarizer::new(&graph, &stats);
        let k = (graph.len() - 1).min(3);
        let summary = s.summarize(k, Algorithm::Balance).expect("builds");
        let r = summary_cost(&graph, &summary, &q, CostModel::SiblingScan);
        prop_assert!(r.found_all, "summary discovery incomplete");
    }

    #[test]
    fn coverage_metric_is_bounded_and_saturates((graph, stats) in arb_schema()) {
        // Summary coverage is NOT monotone in the selected set (a newly
        // added element can steal members by affinity while covering them
        // worse), so we assert only what Definition 4 guarantees: values
        // in (0, 1], and exactly 1 when every element represents itself.
        let mut s = Summarizer::new(&graph, &stats);
        let max_k = (graph.len() - 1).min(4);
        for k in 1..=max_k {
            let sel = s.select(k, Algorithm::MaxCoverage).expect("selects");
            let cov = s.selection_coverage(&sel);
            prop_assert!(cov > 0.0, "zero coverage at k={k}");
            prop_assert!(cov <= 1.0 + 1e-9, "coverage {cov} above 1 at k={k}");
        }
        let full: Vec<ElementId> = graph
            .element_ids()
            .filter(|&e| e != graph.root())
            .collect();
        let cov = s.selection_coverage(&full);
        prop_assert!((cov - 1.0).abs() < 1e-9, "full selection covers {cov}");
    }

    #[test]
    fn fingerprint_is_stable_across_structural_copies((graph, stats) in arb_schema()) {
        let copy = rebuild(&graph, None, None, None);
        prop_assert_eq!(
            SchemaFingerprint::of_graph(&graph),
            SchemaFingerprint::of_graph(&copy),
            "structurally equal graphs must fingerprint equal"
        );
        prop_assert_eq!(
            SchemaFingerprint::of_annotated(&graph, &stats),
            SchemaFingerprint::of_annotated(&copy, &stats)
        );
    }

    #[test]
    fn fingerprint_changes_on_any_single_mutation(
        (graph, _stats) in arb_schema(),
        pick in any::<u64>(),
    ) {
        let base = SchemaFingerprint::of_graph(&graph);
        let victim = ElementId(1 + (pick % (graph.len() as u64 - 1)) as u32);

        // A single relabel is a different schema.
        let relabeled = rebuild(&graph, Some(victim), None, None);
        prop_assert_ne!(base, SchemaFingerprint::of_graph(&relabeled));

        // A single type flip is a different schema.
        let retyped = rebuild(&graph, None, Some(victim), None);
        prop_assert_ne!(base, SchemaFingerprint::of_graph(&retyped));

        // Adding one value link (where none exists) is a different schema.
        let existing: std::collections::HashSet<(ElementId, ElementId)> =
            graph.value_links().collect();
        let composites: Vec<ElementId> = graph
            .element_ids()
            .filter(|&e| graph.ty(e).is_composite())
            .collect();
        let fresh_pair = composites.iter().flat_map(|&f| {
            composites.iter().map(move |&t| (f, t))
        }).find(|&(f, t)| f != t && !existing.contains(&(f, t)));
        if let Some(pair) = fresh_pair {
            let linked = rebuild(&graph, None, None, Some(pair));
            prop_assert_ne!(base, SchemaFingerprint::of_graph(&linked));
        }

        // A single cardinality change alters the annotated fingerprint
        // while leaving the structural one untouched.
        let n = graph.len();
        let cards: Vec<u64> = vec![7; n];
        let mut bumped = cards.clone();
        bumped[victim.index()] += 1;
        let flat = SchemaStats::from_link_counts(&graph, &cards, &[]).expect("shape ok");
        let bent = SchemaStats::from_link_counts(&graph, &bumped, &[]).expect("shape ok");
        prop_assert_eq!(
            SchemaFingerprint::of_graph(&graph),
            base,
            "stats never affect the structural fingerprint"
        );
        prop_assert_ne!(
            SchemaFingerprint::of_annotated(&graph, &flat),
            SchemaFingerprint::of_annotated(&graph, &bent)
        );
    }

    #[test]
    fn summary_serde_roundtrip((graph, stats) in arb_schema()) {
        let mut s = Summarizer::new(&graph, &stats);
        let summary = s.summarize(1.max((graph.len() - 1).min(3)), Algorithm::Balance)
            .expect("builds");
        let json = serde_json::to_string(&summary).expect("serializes");
        let back: SchemaSummary = serde_json::from_str(&json).expect("deserializes");
        prop_assert!(back.validate(&graph).is_ok());
    }

    #[test]
    fn expansion_preserves_wellformedness((graph, stats) in arb_schema()) {
        let mut s = Summarizer::new(&graph, &stats);
        let k = (graph.len() - 1).min(3);
        let summary = s.summarize(k, Algorithm::Balance).expect("builds");
        for aid in summary.abstract_ids() {
            let expanded = summary.expand(&graph, aid).expect("expands");
            prop_assert!(expanded.validate(&graph).is_ok());
            // Re-expansion of another group still validates.
            if let Some(other) = expanded.abstract_ids().next() {
                let twice = expanded.expand(&graph, other).expect("expands again");
                prop_assert!(twice.validate(&graph).is_ok());
            }
        }
    }
}
