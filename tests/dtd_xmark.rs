//! Parse the actual XMark `auction.dtd` through the DTD front-end and
//! check that it produces a schema of the same shape as the hand-built
//! dataset module (which follows the same DTD) — and that it summarizes.

use schema_summary::prelude::*;
use schema_summary_io::{parse_dtd, DtdConfig};

/// The XMark benchmark DTD (auction.dtd, Schmidt et al.), verbatim except
/// for whitespace.
const XMARK_DTD: &str = r#"
<!ELEMENT site            (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT categories      (category+)>
<!ELEMENT category        (name, description)>
<!ATTLIST category        id ID #REQUIRED>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT description     (text | parlist)>
<!ELEMENT text            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword         (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist         (listitem)*>
<!ELEMENT listitem        (text | parlist)*>
<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            EMPTY>
<!ATTLIST edge            from IDREF #REQUIRED to IDREF #REQUIRED>
<!ELEMENT regions         (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>
<!ELEMENT item            (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ATTLIST item            id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT incategory      EMPTY>
<!ATTLIST incategory      category IDREF #REQUIRED>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>
<!ELEMENT itemref         EMPTY>
<!ATTLIST itemref         item IDREF #REQUIRED>
<!ELEMENT personref       EMPTY>
<!ATTLIST personref       person IDREF #REQUIRED>
<!ELEMENT people          (person*)>
<!ELEMENT person          (name, emailaddress?, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person          id ID #REQUIRED>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, province?, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT province        (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (interest*, education?, gender?, business, age?)>
<!ATTLIST profile         income CDATA #IMPLIED>
<!ELEMENT interest        EMPTY>
<!ATTLIST interest        category IDREF #REQUIRED>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT income          (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           EMPTY>
<!ATTLIST watch           open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction    id ID #REQUIRED>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT privacy         (#PCDATA)>
<!ELEMENT seller          EMPTY>
<!ATTLIST seller          person IDREF #REQUIRED>
<!ELEMENT annotation      (author, description?, happiness)>
<!ELEMENT author          EMPTY>
<!ATTLIST author          person IDREF #REQUIRED>
<!ELEMENT happiness       (#PCDATA)>
<!ELEMENT type            (#PCDATA)>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (seller, buyer, itemref, price, date, quantity, type, annotation)>
<!ELEMENT buyer           EMPTY>
<!ATTLIST buyer           person IDREF #REQUIRED>
<!ELEMENT price           (#PCDATA)>
"#;

fn config() -> DtdConfig {
    DtdConfig {
        mixed_as_leaves: true,
        ..Default::default()
    }
        .with_ref("incategory", "category")
        .with_ref("interest", "category")
        .with_ref("edge", "category")
        .with_ref("watch", "open_auction")
        .with_ref("personref", "person")
        .with_ref("seller", "person")
        .with_ref("buyer", "person")
        .with_ref("author", "person")
        .with_ref("itemref", "item")
}

#[test]
fn xmark_dtd_expands_to_paper_scale() {
    let g = parse_dtd(XMARK_DTD, "site", &config()).unwrap();
    // The paper reports 327 elements for its XMark schema; per-context
    // duplication of the item subtree dominates the count. The exact value
    // depends on the recursion cut (we cut repeated names after one
    // occurrence per path).
    assert!(
        (250..=420).contains(&g.len()),
        "DTD expanded to {} elements",
        g.len()
    );
    // Without the mixed-content collapse, the mutually recursive markup
    // vocabulary (bold|keyword|emph) expands its permutations and the
    // schema roughly doubles — the knob matters.
    let full = parse_dtd(
        XMARK_DTD,
        "site",
        &DtdConfig { mixed_as_leaves: false, ..config() },
    )
    .unwrap();
    assert!(full.len() > g.len() + 100, "full expansion {} elements", full.len());
    // Six item contexts, one per region.
    assert_eq!(g.find_by_label("item").len(), 6);
    // person/open_auction/closed_auction are unique.
    assert!(g.find_unique("person").is_some());
    assert!(g.find_unique("open_auction").is_some());
    assert!(g.find_unique("closed_auction").is_some());
}

#[test]
fn key_paths_exist() {
    let g = parse_dtd(XMARK_DTD, "site", &config()).unwrap();
    for path in [
        "site/people/person/profile/interest",
        "site/open_auctions/open_auction/bidder/personref",
        "site/closed_auctions/closed_auction/annotation/author",
        "site/regions/namerica/item/mailbox/mail/text",
        "site/people/person/address/zipcode",
        "site/open_auctions/open_auction/interval/end",
    ] {
        assert!(g.find_by_path(path).is_some(), "missing {path}");
    }
}

#[test]
fn value_links_resolve_per_context() {
    let g = parse_dtd(XMARK_DTD, "site", &config()).unwrap();
    // Each of the two itemref contexts (open and closed auctions) links to
    // all six per-region item elements.
    let itemrefs = g.find_by_label("itemref");
    assert_eq!(itemrefs.len(), 2);
    for &ir in &itemrefs {
        assert_eq!(g.value_links_from(ir).len(), 6, "itemref links to every region");
    }
    // bidder's personref points at the unique person element.
    let person = g.find_unique("person").unwrap();
    let personref = g.find_unique("personref").unwrap();
    assert_eq!(g.value_links_from(personref), &[person]);
}

#[test]
fn dtd_schema_summarizes_like_the_dataset_schema() {
    let g = parse_dtd(XMARK_DTD, "site", &config()).unwrap();
    // Uniform stats (no instance attached): summarization must still run
    // and pick structurally central elements.
    let stats = SchemaStats::uniform(&g);
    let mut s = Summarizer::new(&g, &stats);
    let summary = s.summarize(10, Algorithm::Balance).unwrap();
    summary.validate(&g).unwrap();
    let labels: Vec<&str> = summary
        .visible_elements()
        .iter()
        .map(|&e| g.label(e))
        .collect();
    // The big composite entities should surface even without data.
    assert!(
        labels.contains(&"person") || labels.contains(&"item") || labels.contains(&"open_auction"),
        "{labels:?}"
    );
}

#[test]
fn mixed_content_markup_repeats() {
    let g = parse_dtd(XMARK_DTD, "site", &config()).unwrap();
    // text's mixed content (#PCDATA | bold | keyword | emph)* makes every
    // markup child repeatable.
    let texts = g.find_by_label("text");
    assert!(!texts.is_empty());
    let kw = g
        .children(texts[0])
        .iter()
        .copied()
        .find(|&c| g.label(c) == "keyword")
        .expect("text has keyword child");
    assert!(g.ty(kw).is_set());
}
