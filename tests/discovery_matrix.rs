//! Every discovery strategy against every dataset: completeness, cost
//! bounds, and the orderings that make the evaluation meaningful.

use schema_summary::prelude::*;
use schema_summary_datasets::{mimi, tpch, xmark, Dataset};
use schema_summary_discovery::{
    linear_scan_cost, multilevel_cost, session_best_first, session_with_summary, ExpansionModel,
    WorkloadReport,
};

fn datasets() -> Vec<Dataset> {
    vec![
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ]
}

#[test]
fn every_strategy_completes_every_query() {
    for d in datasets() {
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let summary = s.summarize(5, Algorithm::Balance).unwrap();
        for q in &d.queries {
            for (name, r) in [
                ("linear", linear_scan_cost(&d.graph, q)),
                ("df", depth_first_cost(&d.graph, q)),
                ("bf", breadth_first_cost(&d.graph, q)),
                ("best-scan", best_first_cost(&d.graph, q, CostModel::SiblingScan)),
                ("best-path", best_first_cost(&d.graph, q, CostModel::PathOnly)),
                ("summary", summary_cost(&d.graph, &summary, q, CostModel::SiblingScan)),
            ] {
                assert!(r.found_all, "{}/{}: {name} incomplete", d.name, q.name);
                assert!(
                    r.cost <= d.graph.len() + summary.size(),
                    "{}/{}: {name} cost {} exceeds schema size",
                    d.name,
                    q.name,
                    r.cost
                );
            }
        }
    }
}

#[test]
fn pathonly_lower_bounds_sibling_scan_everywhere() {
    for d in datasets() {
        for q in &d.queries {
            let scan = best_first_cost(&d.graph, q, CostModel::SiblingScan);
            let path = best_first_cost(&d.graph, q, CostModel::PathOnly);
            assert!(
                path.cost <= scan.cost,
                "{}/{}: path {} > scan {}",
                d.name,
                q.name,
                path.cost,
                scan.cost
            );
        }
    }
}

#[test]
fn linear_scan_is_never_better_than_depth_first_on_these_schemas() {
    // Declaration order equals document order for the dataset builders, so
    // the two coincide per query.
    for d in datasets() {
        for q in &d.queries {
            let lin = linear_scan_cost(&d.graph, q);
            let df = depth_first_cost(&d.graph, q);
            assert_eq!(lin.cost, df.cost, "{}/{}", d.name, q.name);
        }
    }
}

#[test]
fn workload_reports_agree_with_direct_averages() {
    for d in datasets() {
        let report = WorkloadReport::run("best", &d.queries, |q| {
            best_first_cost(&d.graph, q, CostModel::SiblingScan)
        });
        let direct: f64 = d
            .queries
            .iter()
            .map(|q| best_first_cost(&d.graph, q, CostModel::SiblingScan).cost)
            .sum::<usize>() as f64
            / d.queries.len() as f64;
        assert!((report.mean - direct).abs() < 1e-9, "{}", d.name);
        assert!(report.complete);
        assert_eq!(report.per_query.len(), d.queries.len());
    }
}

#[test]
fn multilevel_discovery_completes_on_every_dataset() {
    for d in datasets() {
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let ml = s.multi_level(&[12, 4], Algorithm::Balance).unwrap();
        ml.validate(&d.graph).unwrap();
        for q in &d.queries {
            let r = multilevel_cost(
                &d.graph,
                &ml,
                q,
                CostModel::SiblingScan,
                ExpansionModel::Scan,
            );
            assert!(r.found_all, "{}/{}", d.name, q.name);
        }
    }
}

#[test]
fn sessions_learn_on_every_dataset() {
    for d in datasets() {
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let summary = s.summarize(paper_size(d.name), Algorithm::Balance).unwrap();
        let plain = session_best_first(&d.graph, &d.queries, CostModel::SiblingScan);
        let with = session_with_summary(
            &d.graph,
            &summary,
            &d.queries,
            CostModel::SiblingScan,
            ExpansionModel::Scan,
        );
        // Learning monotonicity for both arms.
        assert!(plain.mean_of_first(5) >= plain.mean_of_last(5), "{}", d.name);
        assert!(with.mean_of_first(5) >= with.mean_of_last(5), "{}", d.name);
        // A session is never costlier than memoryless discovery.
        let memoryless: usize = d
            .queries
            .iter()
            .map(|q| best_first_cost(&d.graph, q, CostModel::SiblingScan).cost)
            .sum();
        assert!(plain.total() <= memoryless, "{}", d.name);
    }
}

fn paper_size(name: &str) -> usize {
    if name == "TPC-H" {
        5
    } else {
        10
    }
}
