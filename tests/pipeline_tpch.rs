//! End-to-end TPC-H pipeline, exercising the relational mapping both from
//! the built-in dataset and through the DDL front-end.

use schema_summary::prelude::*;
use schema_summary_datasets::tpch;

#[test]
fn table1_statistics_reproduce() {
    let d = tpch::dataset(0.1);
    assert_eq!(d.graph.len(), 70, "Table 1: 70 schema elements");
    assert_eq!(d.queries.len(), 22, "Table 1: 22 queries");
    let volume = d.stats.total_card();
    assert!(
        (12_000_000.0..13_000_000.0).contains(&volume),
        "Table 1: 12.55M data elements at SF 0.1, got {volume}"
    );
    let avg = d.avg_intention_size();
    assert!((10.0..15.0).contains(&avg), "Table 1: avg 13.4, got {avg}");
}

#[test]
fn summary_helps_even_flat_relational_schemas() {
    let d = tpch::dataset(0.1);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(5, Algorithm::Balance).unwrap();
    summary.validate(&d.graph).unwrap();
    let mut best = 0usize;
    let mut with = 0usize;
    for q in &d.queries {
        best += best_first_cost(&d.graph, q, CostModel::SiblingScan).cost;
        let r = summary_cost(&d.graph, &summary, q, CostModel::SiblingScan);
        assert!(r.found_all);
        with += r.cost;
    }
    // Paper Table 3: saving is smallest on TPC-H but still positive.
    assert!(with < best, "summary {with} vs best-first {best}");
}

#[test]
fn summary_selects_the_big_tables() {
    let d = tpch::dataset(0.1);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let sel = s.select(5, Algorithm::Balance).unwrap();
    let labels: Vec<&str> = sel.iter().map(|&e| d.graph.label(e)).collect();
    // lineitem and orders dominate both data volume and connectivity; any
    // reasonable summary keeps them.
    assert!(labels.contains(&"lineitem"), "{labels:?}");
    assert!(labels.contains(&"orders"), "{labels:?}");
}

#[test]
fn ddl_frontend_agrees_with_builtin_schema() {
    let ddl = r"
        CREATE TABLE region (r_regionkey INTEGER PRIMARY KEY, r_name VARCHAR(25), r_comment VARCHAR(152));
        CREATE TABLE nation (n_nationkey INTEGER PRIMARY KEY, n_name VARCHAR(25), n_regionkey INTEGER REFERENCES region, n_comment VARCHAR(152));
        CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY, c_name VARCHAR(25), c_address VARCHAR(40), c_nationkey INTEGER REFERENCES nation, c_phone VARCHAR(15), c_acctbal DECIMAL(15,2), c_mktsegment VARCHAR(10), c_comment VARCHAR(117));
        CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER REFERENCES customer, o_orderstatus VARCHAR(1), o_totalprice DECIMAL(15,2), o_orderdate DATE, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), o_shippriority INTEGER, o_comment VARCHAR(79));
    ";
    let g = schema_summary_io::parse_ddl(ddl, "tpch").unwrap();
    assert_eq!(g.len(), 1 + 4 + 3 + 4 + 8 + 9);
    // Same labels as the built-in TPC-H subset, same FK topology.
    let orders = g.find_unique("orders").unwrap();
    let customer = g.find_unique("customer").unwrap();
    assert_eq!(g.value_links_from(orders), &[customer]);
    // And it summarizes.
    let stats = SchemaStats::uniform(&g);
    let mut s = Summarizer::new(&g, &stats);
    let summary = s.summarize(2, Algorithm::Balance).unwrap();
    summary.validate(&g).unwrap();
}

#[test]
fn fk_rc_matches_spec_ratios() {
    let (_, stats, h) = tpch::schema(1.0);
    // 6M lineitems / 1.5M orders = 4 per order at any scale factor.
    assert!((stats.rc(h.table("orders"), h.table("lineitem")) - 4.0).abs() < 0.01);
    // 800k partsupps / 200k parts = 4 suppliers per part.
    assert!((stats.rc(h.table("part"), h.table("partsupp")) - 4.0).abs() < 0.01);
    // 25 nations over 5 regions.
    assert!((stats.rc(h.table("region"), h.table("nation")) - 5.0).abs() < 0.01);
}
