//! End-to-end MiMI pipeline: the real-dataset behaviours the paper
//! highlights — biggest summary benefit, stability under data evolution,
//! and the ER-baseline comparison ordering.

use schema_summary::prelude::*;
use schema_summary_baselines::{cafp_select, twbk_select, twbk_select_seeded, Weighting};
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_discovery::agreement::agreement;

fn avg_with_summary(d: &schema_summary_datasets::Dataset, summary: &SchemaSummary) -> f64 {
    d.queries
        .iter()
        .map(|q| {
            let r = summary_cost(&d.graph, summary, q, CostModel::SiblingScan);
            assert!(r.found_all, "{}", q.name);
            r.cost
        })
        .sum::<usize>() as f64
        / d.queries.len() as f64
}

fn avg_best(d: &schema_summary_datasets::Dataset) -> f64 {
    d.queries
        .iter()
        .map(|q| best_first_cost(&d.graph, q, CostModel::SiblingScan).cost)
        .sum::<usize>() as f64
        / d.queries.len() as f64
}

#[test]
fn real_workloads_benefit_most() {
    // Paper Section 5.4: "schema summarization was most effective for the
    // one real data set" — MiMI's saving must exceed TPC-H's.
    let mimi = mimi::dataset(Version::Jan06);
    let tpch = schema_summary_datasets::tpch::dataset(0.1);
    let saving = |d: &schema_summary_datasets::Dataset, k: usize| {
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let summary = s.summarize(k, Algorithm::Balance).unwrap();
        1.0 - avg_with_summary(d, &summary) / avg_best(d)
    };
    let mimi_saving = saving(&mimi, 10);
    let tpch_saving = saving(&tpch, 5);
    assert!(
        mimi_saving > tpch_saving,
        "MiMI saving {mimi_saving:.2} vs TPC-H {tpch_saving:.2}"
    );
    assert!(mimi_saving > 0.2, "MiMI saving should be substantial");
}

#[test]
fn summaries_stay_stable_under_proportional_growth() {
    // Table 5: Apr 04 → Jan 05 grows volume without changing distribution.
    let sel = |v: Version, k: usize| {
        let (g, s, _) = mimi::schema(v);
        let mut sum = Summarizer::new(&g, &s);
        sum.select(k, Algorithm::Balance).unwrap()
    };
    for k in [5, 10, 15] {
        let a = sel(Version::Apr04, k);
        let b = sel(Version::Jan05, k);
        assert!(
            agreement(&a, &b) >= 0.8,
            "size {k}: agreement {} too low",
            agreement(&a, &b)
        );
    }
    // Size-5 summaries are fully stable even across the domain import.
    let a = sel(Version::Apr04, 5);
    let c = sel(Version::Jan06, 5);
    assert!(agreement(&a, &c) >= 0.6);
}

#[test]
fn domain_import_shifts_larger_summaries() {
    // The October 2005 domain import is a genuine distribution change; the
    // domain element must enter the Jan 06 importance ranking prominently.
    let (g, s, h) = mimi::schema(Version::Jan06);
    let mut sum = Summarizer::new(&g, &s);
    let rank: Vec<_> = sum.importance().ranked(&g);
    let pos = rank.iter().position(|&e| e == h.get("domain")).unwrap();
    assert!(pos < 30, "domain ranked only #{pos} after the import");

    let (g4, s4, h4) = mimi::schema(Version::Apr04);
    let mut sum4 = Summarizer::new(&g4, &s4);
    let rank4: Vec<_> = sum4.importance().ranked(&g4);
    let pos4 = rank4.iter().position(|&e| e == h4.get("domain")).unwrap();
    assert!(pos4 > pos, "domain should rank lower before the import");
}

#[test]
fn er_baselines_order_as_in_table6() {
    let d = mimi::dataset(Version::Jan06);
    let (_, _, h) = mimi::schema(Version::Jan06);
    let seeds = mimi::major_entities(&h);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let eval = |s: &mut Summarizer, sel: &[ElementId]| {
        let summary = s.summarize_selection(sel).unwrap();
        avg_with_summary(&d, &summary)
    };
    let balance = {
        let summary = s.summarize(10, Algorithm::Balance).unwrap();
        avg_with_summary(&d, &summary)
    };
    let twbk_human = eval(&mut s, &twbk_select_seeded(&d.graph, Weighting::human(), 10, &seeds));
    let twbk_auto = eval(&mut s, &twbk_select(&d.graph, Weighting::unsupervised(), 10));
    let cafp_auto = eval(&mut s, &cafp_select(&d.graph, Weighting::unsupervised(), 10));
    // Paper Table 6 ordering: BalanceSummary ≈ with-human < w/o-human.
    assert!(balance <= twbk_human + 1.0, "balance {balance} vs twbk+human {twbk_human}");
    assert!(twbk_human < twbk_auto, "human labels must help TWBK");
    assert!(balance < cafp_auto, "balance must beat unsupervised CAFP");
}

#[test]
fn figure8_shape_u_curve() {
    let d = mimi::dataset(Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let cost_at = |s: &mut Summarizer, k: usize| {
        let summary = s.summarize(k, Algorithm::Balance).unwrap();
        avg_with_summary(&d, &summary)
    };
    let tiny = cost_at(&mut s, 1);
    let basin = cost_at(&mut s, 11);
    let big = cost_at(&mut s, 120);
    // Figure 8: very small summaries lose effectiveness, a mid-size basin
    // is best, and overly large summaries degrade again.
    assert!(tiny > basin, "size-1 ({tiny}) should cost more than size-11 ({basin})");
    assert!(big > basin, "size-120 ({big}) should cost more than size-11 ({basin})");
}

#[test]
fn queries_complete_under_every_algorithm() {
    let d = mimi::dataset(Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    for alg in [Algorithm::Balance, Algorithm::MaxImportance, Algorithm::MaxCoverage] {
        let summary = s.summarize(10, alg).unwrap();
        summary.validate(&d.graph).unwrap();
        for q in &d.queries {
            assert!(
                summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).found_all,
                "{alg:?} / {}",
                q.name
            );
        }
    }
}
