//! Error-path coverage for the `schema-summary serve` JSONL batch driver:
//! a bad line (malformed JSON, unknown schema, out-of-range `k`) reports
//! its error and the batch keeps going, always reaching the stats line.

use std::io::Write;
use std::process::Command;

const DDL: &str = "
CREATE TABLE nation (
  n_nationkey INTEGER PRIMARY KEY,
  n_name TEXT
);
CREATE TABLE customer (
  c_custkey INTEGER PRIMARY KEY,
  c_name TEXT,
  c_nationkey INTEGER REFERENCES nation
);
";

/// Requests mixing every driver error path with requests that must still
/// be served afterwards. The DDL registers its schema as 'db' (7 schema
/// elements incl. root, so k=50 is oversized and k=2 is fine).
const REQUESTS: &str = r#"
# comment lines and blank lines are skipped

{"algorithm":"balance","k":2}
this line is not JSON
{"schema":"no-such-schema","algorithm":"balance","k":2}
{"algorithm":"balance","k":0}
{"algorithm":"balance","k":50}
{"algorithm":"balance","k":2}
"#;

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("schema-summary-serve-test-{name}"));
    let mut f = std::fs::File::create(&path).expect("create fixture");
    f.write_all(contents.as_bytes()).expect("write fixture");
    path
}

#[test]
fn bad_requests_report_and_the_batch_continues() {
    let ddl = write_fixture("schema.ddl", DDL);
    let requests = write_fixture("requests.jsonl", REQUESTS);
    let output = Command::new(env!("CARGO_BIN_EXE_schema-summary"))
        .args(["serve", "--ddl"])
        .arg(&ddl)
        .arg("--requests")
        .arg(&requests)
        .output()
        .expect("run schema-summary serve");
    assert!(
        output.status.success(),
        "driver must exit 0 despite bad lines: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);

    // Every good request was served; every bad one produced a numbered
    // error; the driver reached the final stats line.
    assert!(stdout.contains("#1 alg=balance k=2"), "first good request:\n{stdout}");
    assert!(stdout.contains("#2 error: request line"), "malformed JSON reported:\n{stdout}");
    assert!(
        stdout.contains("#3 error: unknown schema 'no-such-schema'"),
        "unknown schema reported:\n{stdout}"
    );
    assert!(stdout.contains("#4 error:"), "k = 0 rejected:\n{stdout}");
    assert!(stdout.contains("#5 error:"), "oversized k rejected:\n{stdout}");
    assert!(
        stdout.contains("#6 alg=balance k=2 hit"),
        "the batch continues (and hits the cache) after errors:\n{stdout}"
    );
    assert!(stdout.contains("2 served, 4 failed"), "stats line:\n{stdout}");
}

#[test]
fn empty_batch_still_prints_stats() {
    let ddl = write_fixture("schema2.ddl", DDL);
    let requests = write_fixture("empty.jsonl", "# nothing here\n\n");
    let output = Command::new(env!("CARGO_BIN_EXE_schema-summary"))
        .args(["serve", "--ddl"])
        .arg(&ddl)
        .arg("--requests")
        .arg(&requests)
        .output()
        .expect("run schema-summary serve");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("0 served, 0 failed"), "stats line:\n{stdout}");
}
