//! End-to-end XMark pipeline: the Table 3/4 shaped assertions that define a
//! successful reproduction (who wins, in which order), independent of exact
//! magnitudes.

use schema_summary::prelude::*;
use schema_summary_datasets::xmark;

fn avg<F: Fn(&QueryIntention) -> DiscoveryCost>(qs: &[QueryIntention], f: F) -> f64 {
    qs.iter().map(|q| f(q).cost).sum::<usize>() as f64 / qs.len() as f64
}

#[test]
fn discovery_strategy_ordering_holds() {
    let d = xmark::dataset(1.0);
    let df = avg(&d.queries, |q| depth_first_cost(&d.graph, q));
    let bf = avg(&d.queries, |q| breadth_first_cost(&d.graph, q));
    let best = avg(&d.queries, |q| best_first_cost(&d.graph, q, CostModel::SiblingScan));
    // Paper Table 3: depth-first is a poor strategy, breadth-first is
    // better, best-first substantially better.
    assert!(df > bf, "DF {df} should exceed BF {bf}");
    assert!(bf > best, "BF {bf} should exceed best-first {best}");
    assert!(df > 4.0 * best, "DF should be several times best-first");
}

#[test]
fn summary_reduces_discovery_cost() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(10, Algorithm::Balance).unwrap();
    summary.validate(&d.graph).unwrap();
    let best = avg(&d.queries, |q| best_first_cost(&d.graph, q, CostModel::SiblingScan));
    let with = avg(&d.queries, |q| {
        let r = summary_cost(&d.graph, &summary, q, CostModel::SiblingScan);
        assert!(r.found_all, "{} not fully discovered", q.name);
        r
    });
    assert!(
        with < best,
        "summary ({with}) must beat best-first ({best}) on XMark"
    );
}

#[test]
fn balance_at_least_matches_single_criterion_algorithms() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let cost = |s: &mut Summarizer, alg| {
        let summary = s.summarize(10, alg).unwrap();
        avg(&d.queries, |q| summary_cost(&d.graph, &summary, q, CostModel::SiblingScan))
    };
    let balance = cost(&mut s, Algorithm::Balance);
    let importance = cost(&mut s, Algorithm::MaxImportance);
    // Paper Table 4: ignoring coverage hurts on XMark.
    assert!(
        balance <= importance + 1e-9,
        "balance {balance} vs importance-only {importance}"
    );
}

#[test]
fn importance_ranks_the_paper_headliners_on_top() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let top: Vec<String> = s
        .importance()
        .top_k(&d.graph, 4)
        .iter()
        .map(|&e| d.graph.label(e).to_string())
        .collect();
    // Section 3.1: "the most important elements are bidder, item, and
    // person" — all three must appear among our top ranks.
    assert!(top.iter().any(|l| l == "bidder"), "{top:?}");
    assert!(top.iter().any(|l| l == "person"), "{top:?}");
    assert!(top.iter().any(|l| l == "item"), "{top:?}");
}

#[test]
fn importance_mass_equals_total_cardinality() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let total = s.importance().total();
    assert!(
        (total - d.stats.total_card()).abs() / d.stats.total_card() < 1e-6,
        "importance mass {total} vs cardinality {}",
        d.stats.total_card()
    );
}

#[test]
fn dominance_prunes_a_meaningful_fraction() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let kept = s.dominance().non_dominated(&d.graph).len();
    let n = d.graph.len() - 1;
    // The paper reports over 50% reduction; require at least 25% so the
    // assertion is robust to modeling detail.
    assert!(
        kept as f64 <= 0.75 * n as f64,
        "only {} of {} pruned",
        n - kept,
        n
    );
}

#[test]
fn summaries_nest_reasonably_across_sizes() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let s5 = s.select(5, Algorithm::Balance).unwrap();
    let s10 = s.select(10, Algorithm::Balance).unwrap();
    let overlap = s5.iter().filter(|e| s10.contains(e)).count();
    // The BalanceSummary walk is importance-ordered, so smaller summaries
    // are (near-)prefixes of larger ones.
    assert!(overlap >= 4, "size-5 barely overlaps size-10: {overlap}");
}

#[test]
fn expansion_keeps_the_summary_well_formed() {
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(5, Algorithm::Balance).unwrap();
    for aid in summary.abstract_ids() {
        let expanded = summary.expand(&d.graph, aid).unwrap();
        expanded.validate(&d.graph).unwrap();
        assert!(!expanded.is_full());
    }
}
