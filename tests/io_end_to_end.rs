//! XSD + XML front-end to summary pipeline: parse a schema, load a
//! document, annotate, summarize, export.

use schema_summary::prelude::*;
use schema_summary_io::{parse_xml_instance, parse_xsd, schema_to_dot, summary_to_dot};

const SCHEMA: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="authors">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="author" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="name" type="xs:string"/>
                    <xs:element name="born" type="xs:integer" minOccurs="0"/>
                  </xs:sequence>
                  <xs:attribute name="id" type="xs:ID"/>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="books">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="book" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                    <xs:element name="year" type="xs:integer"/>
                  </xs:sequence>
                  <xs:attribute name="author" type="xs:IDREF"/>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <ss:ref from="library/books/book" to="library/authors/author"/>
</xs:schema>"#;

fn document(n_authors: usize, books_per_author: usize) -> String {
    let mut doc = String::from("<library><authors>");
    for a in 0..n_authors {
        doc.push_str(&format!(
            r#"<author id="a{a}"><name>A{a}</name><born>19{:02}</born></author>"#,
            a % 100
        ));
    }
    doc.push_str("</authors><books>");
    for a in 0..n_authors {
        for b in 0..books_per_author {
            doc.push_str(&format!(
                r#"<book author="a{a}"><title>T{a}-{b}</title><year>20{:02}</year></book>"#,
                b % 100
            ));
        }
    }
    doc.push_str("</books></library>");
    doc
}

#[test]
fn full_pipeline_from_text_to_summary() {
    let graph = parse_xsd(SCHEMA).unwrap();
    assert_eq!(graph.len(), 11);

    let data = parse_xml_instance(&graph, &document(20, 3)).unwrap();
    assert!(check_conformance(&graph, &data).is_empty());

    let stats = annotate_schema(&graph, &data).unwrap();
    let author = graph.find_unique("author").unwrap();
    let book = graph.find_unique("book").unwrap();
    assert_eq!(stats.card(author), 20.0);
    assert_eq!(stats.card(book), 60.0);
    assert!((stats.rc(author, book) - 3.0).abs() < 1e-9);

    let mut s = Summarizer::new(&graph, &stats);
    let summary = s.summarize(2, Algorithm::Balance).unwrap();
    summary.validate(&graph).unwrap();
    let visible = summary.visible_elements();
    let names: Vec<&str> = visible.iter().map(|&e| graph.label(e)).collect();
    // book is the data-heavy hub and must be selected; the second element
    // comes from the authors subtree (Theorem 1 makes book dominate author
    // itself here — book covers the author side at 3/7 strength while
    // carrying 3x the data — so BalanceSummary picks a surviving
    // author-side element like name instead).
    assert!(names.contains(&"book"), "{names:?}");
    let authors_subtree = graph.subtree(graph.find_unique("authors").unwrap());
    assert!(
        visible.iter().any(|e| authors_subtree.contains(e)),
        "no author-side representative in {names:?}"
    );

    // Export both renderings.
    let sdot = schema_to_dot(&graph);
    let mdot = summary_to_dot(&graph, &summary);
    assert!(sdot.contains("author*"));
    assert!(mdot.contains("peripheries=2"));
}

#[test]
fn summary_discovery_on_parsed_schema() {
    let graph = parse_xsd(SCHEMA).unwrap();
    let data = parse_xml_instance(&graph, &document(10, 2)).unwrap();
    let stats = annotate_schema(&graph, &data).unwrap();
    let mut s = Summarizer::new(&graph, &stats);
    let summary = s.summarize(2, Algorithm::Balance).unwrap();
    let q = QueryIntention::from_labels(&graph, "q", &["book", "title", "name"]).unwrap();
    let base = best_first_cost(&graph, &q, CostModel::SiblingScan);
    let with = summary_cost(&graph, &summary, &q, CostModel::SiblingScan);
    assert!(base.found_all && with.found_all);
    // Tiny schema: no strong claim about which is cheaper, only that both
    // terminate and stay within the schema size.
    assert!(with.cost <= graph.len());
    assert!(base.cost <= graph.len());
}

#[test]
fn annotation_equals_closed_form_profile() {
    // The same statistics whether they come from a materialized document or
    // from closed-form counts — the soundness argument behind the dataset
    // profiles (DESIGN.md §4).
    use schema_summary_core::stats::LinkCount;
    let graph = parse_xsd(SCHEMA).unwrap();
    let data = parse_xml_instance(&graph, &document(12, 4)).unwrap();
    let from_data = annotate_schema(&graph, &data).unwrap();

    let f = |l: &str| graph.find_unique(l).unwrap();
    let mut cards = vec![0u64; graph.len()];
    for (label, c) in [
        ("library", 1u64),
        ("authors", 1),
        ("author", 12),
        ("@id", 12),
        ("name", 12),
        ("born", 12),
        ("books", 1),
        ("book", 48),
        ("@author", 48),
        ("title", 48),
        ("year", 48),
    ] {
        cards[f(label).index()] = c;
    }
    let links = vec![
        LinkCount { from: f("library"), to: f("authors"), count: 1 },
        LinkCount { from: f("authors"), to: f("author"), count: 12 },
        LinkCount { from: f("author"), to: f("@id"), count: 12 },
        LinkCount { from: f("author"), to: f("name"), count: 12 },
        LinkCount { from: f("author"), to: f("born"), count: 12 },
        LinkCount { from: f("library"), to: f("books"), count: 1 },
        LinkCount { from: f("books"), to: f("book"), count: 48 },
        LinkCount { from: f("book"), to: f("@author"), count: 48 },
        LinkCount { from: f("book"), to: f("title"), count: 48 },
        LinkCount { from: f("book"), to: f("year"), count: 48 },
        LinkCount { from: f("book"), to: f("author"), count: 48 },
    ];
    let closed_form = SchemaStats::from_link_counts(&graph, &cards, &links).unwrap();
    for e in graph.element_ids() {
        assert_eq!(from_data.card(e), closed_form.card(e), "{}", graph.label(e));
        for nb in graph.element_ids() {
            assert!(
                (from_data.rc(e, nb) - closed_form.rc(e, nb)).abs() < 1e-12,
                "RC mismatch {} -> {}",
                graph.label(e),
                graph.label(nb)
            );
        }
    }
}
