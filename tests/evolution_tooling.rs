//! The operational tooling around the paper's data-evolution story
//! (Section 3.3), exercised end-to-end on the MiMI versions: the
//! [`SummaryMonitor`] detects the October-2005 domain import, the
//! [`SummaryDiff`] explains it, and session replays quantify the user-side
//! impact.

use schema_summary::algo::SummaryMonitor;
use schema_summary::core::SummaryDiff;
use schema_summary::prelude::*;
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_discovery::{session_with_summary, ExpansionModel};

#[test]
fn monitor_detects_the_domain_import() {
    let (graph, _, handles) = mimi::schema(Version::Apr04);
    let mut monitor = SummaryMonitor::new(15, Algorithm::Balance);
    for &v in &[Version::Apr04, Version::Jan05] {
        let (_, stats, _) = mimi::schema(v);
        monitor.refresh(&graph, &stats).unwrap();
    }
    let pre_changes = monitor.changes();

    let (_, stats06, _) = mimi::schema(Version::Jan06);
    let report = monitor.refresh(&graph, &stats06).unwrap();
    assert!(report.changed, "the domain import must register");
    assert!(
        report.entered.contains(&handles.get("domain")),
        "domain should enter the size-15 summary: {:?}",
        report
            .entered
            .iter()
            .map(|&e| graph.label(e))
            .collect::<Vec<_>>()
    );
    assert!(monitor.changes() > pre_changes);
}

#[test]
fn diff_explains_the_version_change() {
    let (graph, stats05, _) = mimi::schema(Version::Jan05);
    let (_, stats06, handles) = mimi::schema(Version::Jan06);
    let mut s05 = Summarizer::new(&graph, &stats05);
    let mut s06 = Summarizer::new(&graph, &stats06);
    let old = s05.summarize(15, Algorithm::Balance).unwrap();
    let new = s06.summarize(15, Algorithm::Balance).unwrap();
    let diff = SummaryDiff::compute(&graph, &old, &new);
    assert!(!diff.is_empty());
    // The new groups include the domain element.
    assert!(
        diff.added_groups.contains(&handles.get("domain")),
        "added: {:?}",
        diff.added_groups
            .iter()
            .map(|&e| graph.label(e))
            .collect::<Vec<_>>()
    );
    // Most of the schema keeps its grouping.
    assert!(diff.stability() > 0.5, "stability {}", diff.stability());
    let text = diff.render(&graph);
    assert!(text.contains("domain"), "{text}");
}

#[test]
fn sessions_complete_across_versions() {
    // The workload replays against every version's statistics (domains
    // carry no data before Jan 06, yet their queries must still complete:
    // discovery is over the schema, not the data).
    for &v in &Version::ALL {
        let (graph, stats, _) = mimi::schema(v);
        let queries = mimi::dataset(v).queries;
        let mut s = Summarizer::new(&graph, &stats);
        let summary = s.summarize(10, Algorithm::Balance).unwrap();
        let curve = session_with_summary(
            &graph,
            &summary,
            &queries,
            CostModel::SiblingScan,
            ExpansionModel::Scan,
        );
        assert_eq!(curve.per_query.len(), queries.len(), "{}", v.name());
        assert!(curve.elements_learned > 20, "{}", v.name());
        // Learning monotonicity: later queries are on average no more
        // expensive than early ones.
        assert!(curve.mean_of_first(10) >= curve.mean_of_last(10));
    }
}

#[test]
fn monitor_materializes_consistent_summaries() {
    let (graph, stats, _) = mimi::schema(Version::Jan06);
    let mut monitor = SummaryMonitor::new(10, Algorithm::Balance);
    monitor.refresh(&graph, &stats).unwrap();
    let from_monitor = monitor.materialize(&graph, &stats).unwrap();
    from_monitor.validate(&graph).unwrap();
    let mut s = Summarizer::new(&graph, &stats);
    let direct = s.summarize(10, Algorithm::Balance).unwrap();
    // Same selection, same grouping.
    assert!(SummaryDiff::compute(&graph, &direct, &from_monitor).is_empty());
}
